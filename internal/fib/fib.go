// Package fib provides Fibonacci-number utilities used throughout the
// stream-merging algorithms of Bar-Noy, Goshi and Ladner.
//
// The optimal merge cost in the receive-two model is governed by Fibonacci
// numbers: M(n) = (k-1)n - F_{k+2} + 2 for F_k <= n <= F_{k+1}, and the
// optimal number of full streams in a forest is determined by the index h
// with F_{h+1} < L+2 <= F_{h+2}.  This package centralizes all Fibonacci
// index arithmetic so that the conventions (F_0 = 0, F_1 = 1, F_2 = 1, ...)
// are defined in exactly one place.
package fib

import (
	"fmt"
	"math"
)

// Phi is the golden ratio (1+sqrt(5))/2, the positive solution of x^2 = x+1.
const Phi = 1.6180339887498948482045868343656381177

// PhiHat is the conjugate root (1-sqrt(5))/2 of x^2 = x+1.
const PhiHat = -0.6180339887498948482045868343656381177

// MaxIndex is the largest Fibonacci index representable without overflowing
// int64 (F_92 = 7540113804746346429 < 2^63-1, F_93 overflows).
const MaxIndex = 92

// table holds F_0..F_MaxIndex, filled in by init.
var table [MaxIndex + 1]int64

func init() {
	table[0] = 0
	table[1] = 1
	for k := 2; k <= MaxIndex; k++ {
		table[k] = table[k-1] + table[k-2]
	}
}

// F returns the k-th Fibonacci number with the convention
// F(0)=0, F(1)=1, F(2)=1, F(3)=2, F(4)=3, F(5)=5, ...
// It panics if k is negative or larger than MaxIndex.
func F(k int) int64 {
	if k < 0 || k > MaxIndex {
		panic(fmt.Sprintf("fib: index %d out of range [0,%d]", k, MaxIndex))
	}
	return table[k]
}

// Sequence returns the slice F(0), F(1), ..., F(k).
func Sequence(k int) []int64 {
	if k < 0 || k > MaxIndex {
		panic(fmt.Sprintf("fib: index %d out of range [0,%d]", k, MaxIndex))
	}
	out := make([]int64, k+1)
	copy(out, table[:k+1])
	return out
}

// UpTo returns all Fibonacci numbers F(2), F(3), ... that are <= n, starting
// from F(2)=1 (the first positive index after the duplicated 1).  The result
// is empty if n < 1.
func UpTo(n int64) []int64 {
	var out []int64
	for k := 2; k <= MaxIndex && table[k] <= n; k++ {
		out = append(out, table[k])
	}
	return out
}

// IsFibonacci reports whether n equals some Fibonacci number F(k) with k>=0.
func IsFibonacci(n int64) bool {
	if n < 0 {
		return false
	}
	for k := 0; k <= MaxIndex; k++ {
		if table[k] == n {
			return true
		}
		if table[k] > n {
			return false
		}
	}
	return false
}

// IndexFloor returns the largest index k >= 2 such that F(k) <= n.
// Using k >= 2 avoids the ambiguity F(1) = F(2) = 1 and matches the paper's
// convention of writing n = F_k + m with 0 <= m <= F_{k-1}: for n = 1 the
// returned index is 2, for n = 2 it is 3, for n = 3 it is 4, and so on.
// It panics if n < 1.
func IndexFloor(n int64) int {
	if n < 1 {
		panic(fmt.Sprintf("fib: IndexFloor requires n >= 1, got %d", n))
	}
	k := 2
	for k+1 <= MaxIndex && table[k+1] <= n {
		k++
	}
	return k
}

// Bracket returns the index k such that F(k) <= n <= F(k+1) together with
// the bracketing values F(k) and F(k+1).  When n is itself a Fibonacci
// number the lower index is returned (the paper's formulas are redundant at
// the boundary, so either choice yields the same merge cost).
// It panics if n < 1.
func Bracket(n int64) (k int, fk, fk1 int64) {
	k = IndexFloor(n)
	return k, table[k], table[k+1]
}

// IndexForLength returns the index h satisfying F(h+1) < L+2 <= F(h+2).
// This is the index used by Theorem 12 (optimal number of full streams is
// floor(n/F(h)) or one more) and by the on-line algorithm of Section 4
// (static merge trees of size F(h)).  It panics if L < 1.
func IndexForLength(L int64) int {
	if L < 1 {
		panic(fmt.Sprintf("fib: IndexForLength requires L >= 1, got %d", L))
	}
	// Find the smallest index j >= 3 with L+2 <= F(j); then h = j-2.
	target := L + 2
	for j := 3; j <= MaxIndex; j++ {
		if table[j] >= target {
			return j - 2
		}
	}
	panic(fmt.Sprintf("fib: IndexForLength overflow for L = %d", L))
}

// TreeSizeForLength returns F(h) for h = IndexForLength(L): the number of
// arrivals per merge tree used by the on-line delay-guaranteed algorithm.
func TreeSizeForLength(L int64) int64 {
	return F(IndexForLength(L))
}

// LogPhi returns log base phi of x.
func LogPhi(x float64) float64 {
	return math.Log(x) / math.Log(Phi)
}

// Approx returns the Binet approximation phi^k/sqrt(5) rounded to the
// nearest integer, which equals F(k) exactly for all k in range.
func Approx(k int) int64 {
	return int64(math.Round(math.Pow(Phi, float64(k)) / math.Sqrt(5)))
}

// Zeckendorf returns the Zeckendorf representation of n >= 1: the unique set
// of non-consecutive Fibonacci indices k_1 > k_2 > ... (all >= 2) with
// n = F(k_1) + F(k_2) + ...  It panics if n < 1.
func Zeckendorf(n int64) []int {
	if n < 1 {
		panic(fmt.Sprintf("fib: Zeckendorf requires n >= 1, got %d", n))
	}
	var idx []int
	rem := n
	for rem > 0 {
		k := IndexFloor(rem)
		idx = append(idx, k)
		rem -= table[k]
	}
	return idx
}

// FromZeckendorf reconstructs the integer encoded by a list of Fibonacci
// indices (the inverse of Zeckendorf for valid representations).
func FromZeckendorf(indices []int) int64 {
	var n int64
	for _, k := range indices {
		n += F(k)
	}
	return n
}
