package fib

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFSmallValues(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987}
	for k, w := range want {
		if got := F(k); got != w {
			t.Errorf("F(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestFRecurrence(t *testing.T) {
	for k := 2; k <= MaxIndex; k++ {
		if F(k) != F(k-1)+F(k-2) {
			t.Fatalf("F(%d) = %d violates recurrence (F(%d)=%d, F(%d)=%d)",
				k, F(k), k-1, F(k-1), k-2, F(k-2))
		}
	}
}

func TestFPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, MaxIndex + 1, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("F(%d) did not panic", k)
				}
			}()
			F(k)
		}()
	}
}

func TestSequence(t *testing.T) {
	seq := Sequence(10)
	if len(seq) != 11 {
		t.Fatalf("Sequence(10) has length %d, want 11", len(seq))
	}
	for k, v := range seq {
		if v != F(k) {
			t.Errorf("Sequence(10)[%d] = %d, want %d", k, v, F(k))
		}
	}
}

func TestUpTo(t *testing.T) {
	got := UpTo(21)
	want := []int64{1, 2, 3, 5, 8, 13, 21}
	if len(got) != len(want) {
		t.Fatalf("UpTo(21) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UpTo(21) = %v, want %v", got, want)
		}
	}
	if len(UpTo(0)) != 0 {
		t.Errorf("UpTo(0) should be empty, got %v", UpTo(0))
	}
}

func TestIsFibonacci(t *testing.T) {
	fibs := map[int64]bool{0: true, 1: true, 2: true, 3: true, 5: true, 8: true, 13: true, 21: true, 34: true}
	for n := int64(-2); n <= 40; n++ {
		want := fibs[n]
		if n >= 0 && !want {
			// not in the map and non-negative: only true if truly Fibonacci
			want = false
		}
		if got := IsFibonacci(n); got != want {
			t.Errorf("IsFibonacci(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIndexFloor(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{1, 2}, {2, 3}, {3, 4}, {4, 4}, {5, 5}, {7, 5}, {8, 6},
		{12, 6}, {13, 7}, {20, 7}, {21, 8}, {33, 8}, {34, 9}, {55, 10},
	}
	for _, c := range cases {
		if got := IndexFloor(c.n); got != c.want {
			t.Errorf("IndexFloor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIndexFloorBrackets(t *testing.T) {
	for n := int64(1); n <= 100000; n++ {
		k := IndexFloor(n)
		if !(F(k) <= n && n <= F(k+1)) || k < 2 {
			t.Fatalf("IndexFloor(%d) = %d does not bracket: F(%d)=%d F(%d)=%d",
				n, k, k, F(k), k+1, F(k+1))
		}
		// When n is strictly between Fibonacci numbers the bracket is unique.
		if !IsFibonacci(n) && (F(k) > n || F(k+1) < n) {
			t.Fatalf("bad bracket for %d", n)
		}
	}
}

func TestBracket(t *testing.T) {
	k, lo, hi := Bracket(10)
	if k != 6 || lo != 8 || hi != 13 {
		t.Errorf("Bracket(10) = (%d,%d,%d), want (6,8,13)", k, lo, hi)
	}
	k, lo, hi = Bracket(13)
	if k != 7 || lo != 13 || hi != 21 {
		t.Errorf("Bracket(13) = (%d,%d,%d), want (7,13,21)", k, lo, hi)
	}
}

func TestIndexForLength(t *testing.T) {
	// h satisfies F(h+1) < L+2 <= F(h+2).
	cases := []struct {
		L    int64
		want int
	}{
		{1, 2},  // L+2=3: F(3)=2 < 3 <= F(4)=3 -> h=2
		{2, 3},  // L+2=4: F(4)=3 < 4 <= F(5)=5 -> h=3
		{3, 3},  // L+2=5: F(4)=3 < 5 <= F(5)=5 -> h=3
		{4, 4},  // L+2=6: F(5)=5 < 6 <= F(6)=8 -> h=4
		{6, 4},  // L+2=8
		{7, 5},  // L+2=9: F(6)=8 < 9 <= F(7)=13 -> h=5
		{11, 5}, // L+2=13
		{12, 6}, // L+2=14: F(7)=13 < 14 <= F(8)=21 -> h=6
		{15, 6}, // the paper's running example L=15: h=6, F(6)=8
		{19, 6},
		{20, 7}, // L+2=22: F(8)=21 < 22 <= F(9)=34
		{100, 10},
	}
	for _, c := range cases {
		if got := IndexForLength(c.L); got != c.want {
			t.Errorf("IndexForLength(%d) = %d, want %d", c.L, got, c.want)
		}
	}
}

func TestIndexForLengthInvariant(t *testing.T) {
	for L := int64(1); L <= 100000; L++ {
		h := IndexForLength(L)
		if !(F(h+1) < L+2 && L+2 <= F(h+2)) {
			t.Fatalf("IndexForLength(%d) = %d violates F(h+1) < L+2 <= F(h+2): F(%d)=%d F(%d)=%d",
				L, h, h+1, F(h+1), h+2, F(h+2))
		}
	}
}

func TestTreeSizeForLength(t *testing.T) {
	if got := TreeSizeForLength(15); got != 8 {
		t.Errorf("TreeSizeForLength(15) = %d, want 8", got)
	}
	if got := TreeSizeForLength(100); got != 55 {
		t.Errorf("TreeSizeForLength(100) = %d, want 55", got)
	}
	if got := TreeSizeForLength(1); got != 1 {
		t.Errorf("TreeSizeForLength(1) = %d, want 1", got)
	}
}

func TestApproxMatchesExact(t *testing.T) {
	// Binet's formula rounded should be exact up to F(70) comfortably within
	// float64 precision; beyond that rounding error may creep in, so only
	// check the range we rely on.
	for k := 0; k <= 70; k++ {
		if got := Approx(k); got != F(k) {
			t.Errorf("Approx(%d) = %d, want %d", k, got, F(k))
		}
	}
}

func TestLogPhi(t *testing.T) {
	if got := LogPhi(Phi); math.Abs(got-1) > 1e-12 {
		t.Errorf("LogPhi(phi) = %v, want 1", got)
	}
	if got := LogPhi(Phi * Phi); math.Abs(got-2) > 1e-12 {
		t.Errorf("LogPhi(phi^2) = %v, want 2", got)
	}
}

func TestZeckendorfSmall(t *testing.T) {
	cases := []struct {
		n    int64
		want []int
	}{
		{1, []int{2}},
		{2, []int{3}},
		{3, []int{4}},
		{4, []int{4, 2}},
		{10, []int{6, 3}},       // 8+2
		{100, []int{11, 6, 4}},  // 89+8+3
		{54, []int{9, 7, 5, 3}}, // 34+13+5+2
	}
	for _, c := range cases {
		got := Zeckendorf(c.n)
		if len(got) != len(c.want) {
			t.Errorf("Zeckendorf(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Zeckendorf(%d) = %v, want %v", c.n, got, c.want)
				break
			}
		}
	}
}

func TestZeckendorfProperties(t *testing.T) {
	// Property: representation sums back to n, uses indices >= 2, and has no
	// two consecutive indices.
	prop := func(x uint16) bool {
		n := int64(x) + 1
		idx := Zeckendorf(n)
		if FromZeckendorf(idx) != n {
			return false
		}
		for i, k := range idx {
			if k < 2 {
				return false
			}
			if i > 0 && idx[i-1]-k < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGoldenRatioIdentity(t *testing.T) {
	if math.Abs(Phi*Phi-(Phi+1)) > 1e-12 {
		t.Errorf("phi^2 != phi + 1")
	}
	if math.Abs(PhiHat*PhiHat-(PhiHat+1)) > 1e-12 {
		t.Errorf("phiHat^2 != phiHat + 1")
	}
	if math.Abs((Phi+PhiHat)-1) > 1e-12 {
		t.Errorf("phi + phiHat != 1")
	}
}

func BenchmarkIndexFloor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		IndexFloor(int64(i%100000 + 1))
	}
}

func BenchmarkZeckendorf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Zeckendorf(int64(i%100000 + 1))
	}
}
