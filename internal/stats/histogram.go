package stats

import (
	"math"
	"math/bits"
)

// HistogramBuckets is the fixed bucket count of LogHistogram.  The
// buckets are log-2 spaced: bucket 0 covers [0, 256ns), every following
// bucket doubles the upper bound, and the last bucket is the +Inf
// overflow.  27 doublings of 256ns reach ~17s, comfortably past any
// admission-path latency worth resolving, for 28*8 = 224 bytes of
// counters per histogram.
const HistogramBuckets = 28

// histogramBase is the upper bound of bucket 0 in nanoseconds.
const histogramBase = 256

// LogHistogram is a fixed-size log-scale latency histogram counting
// durations in nanoseconds.  It is a plain value type with no pointers:
// observing, merging, and copying never allocate, so one histogram per
// shard per stage can live on the shard struct and stay inside the
// //modlint:noalloc admit path.  The zero value is ready to use.
type LogHistogram struct {
	Counts   [HistogramBuckets]int64 `json:"counts"`
	Count    int64                   `json:"count"`
	SumNanos int64                   `json:"sum_nanos"`
}

// histogramBucket maps a nanosecond duration to its bucket index.
func histogramBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns) / histogramBase)
	if i >= HistogramBuckets {
		i = HistogramBuckets - 1
	}
	return i
}

// HistogramUpperBound returns the exclusive upper bound, in nanoseconds,
// of bucket i.  The last bucket's bound is math.MaxInt64 (rendered as
// +Inf in the Prometheus exposition).
func HistogramUpperBound(i int) int64 {
	if i >= HistogramBuckets-1 {
		return math.MaxInt64
	}
	return histogramBase << uint(i)
}

// Observe records one duration.  Negative durations (possible under a
// coarse or adjusted clock) clamp to zero rather than corrupting a
// bucket index.
func (h *LogHistogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Counts[histogramBucket(ns)]++
	h.Count++
	h.SumNanos += ns
}

// Merge adds other's counts into h.  Merging the zero value is a no-op.
func (h *LogHistogram) Merge(other *LogHistogram) {
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
	h.Count += other.Count
	h.SumNanos += other.SumNanos
}

// Quantile returns an upper bound, in nanoseconds, on the q-quantile
// (0 < q <= 1) of the observed durations: the upper edge of the bucket
// containing the nearest-rank observation.  It returns 0 for an empty
// histogram.  Observations in the overflow bucket report the largest
// finite bound.
func (h *LogHistogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.Counts {
		seen += h.Counts[i]
		if seen >= rank {
			if i == HistogramBuckets-1 {
				return histogramBase << uint(HistogramBuckets-2)
			}
			return HistogramUpperBound(i)
		}
	}
	return histogramBase << uint(HistogramBuckets-2)
}

// MeanNanos returns the mean observed duration in nanoseconds, or 0 for
// an empty histogram.
func (h *LogHistogram) MeanNanos() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNanos) / float64(h.Count)
}
