package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Errorf("empty-slice aggregates should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Errorf("singleton variance should be 0")
	}
	if ConfidenceInterval95([]float64{3}) != 0 {
		t.Errorf("singleton CI should be 0")
	}
	if (Summarize(nil) != Summary{}) {
		t.Errorf("empty Summarize should be zero value")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Errorf("Min/Max wrong")
	}
	if got := Median(xs); got != 3.5 {
		t.Errorf("Median = %v, want 3.5", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v, want 3", got)
	}
}

func TestPanicsOnEmpty(t *testing.T) {
	for _, f := range []func(){
		func() { Min(nil) },
		func() { Max(nil) },
		func() { Median(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarizeAndString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String = %q", s.String())
	}
}

func TestConfidenceInterval(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // alternating 0/1, sd ~ 0.5025
	}
	ci := ConfidenceInterval95(xs)
	if ci <= 0 || ci > 0.2 {
		t.Errorf("CI = %v out of expected range", ci)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(0.5, 0); got != 0.5 {
		t.Errorf("RelativeError with zero want = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestPropertiesMeanBounds(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9 && Variance(xs) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
