// Package stats provides the small set of statistics helpers used by the
// experiment harness: means, standard deviations, extrema, and normal-theory
// confidence intervals over replicated simulation runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (the mean of the two middle elements for
// an even count); it panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Summary aggregates replicated measurements of one quantity.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.  An empty slice yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// ConfidenceInterval95 returns the half-width of the 95% normal-theory
// confidence interval for the mean of xs (1.96 * stderr).  It returns 0 for
// fewer than two samples.
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// String formats a Summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// RelativeError returns |got-want|/|want|, or |got| when want is zero.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
