package stats

import (
	"math"
	"testing"
)

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{-5, 0},
		{0, 0},
		{255, 0},
		{256, 1},
		{511, 1},
		{512, 2},
		{1 << 20, 13}, // 1MiB ns ≈ 1.05ms
		{math.MaxInt64, HistogramBuckets - 1},
	}
	for _, c := range cases {
		if got := histogramBucket(c.ns); got != c.bucket {
			t.Errorf("histogramBucket(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	// Every finite upper bound must be the first value that belongs to
	// the next bucket (exclusive upper edges).
	for i := 0; i < HistogramBuckets-1; i++ {
		ub := HistogramUpperBound(i)
		if histogramBucket(ub-1) != i {
			t.Errorf("bucket %d: upper bound %d minus one lands in bucket %d", i, ub, histogramBucket(ub-1))
		}
		if histogramBucket(ub) != i+1 {
			t.Errorf("bucket %d: upper bound %d lands in bucket %d, want %d", i, ub, histogramBucket(ub), i+1)
		}
	}
	if HistogramUpperBound(HistogramBuckets-1) != math.MaxInt64 {
		t.Errorf("overflow bucket bound = %d, want MaxInt64", HistogramUpperBound(HistogramBuckets-1))
	}
}

func TestHistogramObserveMerge(t *testing.T) {
	var a, b LogHistogram
	for i := int64(0); i < 100; i++ {
		a.Observe(i * 1000)
	}
	b.Observe(1 << 30)
	b.Observe(-7) // clamps to zero
	a.Merge(&b)
	if a.Count != 102 {
		t.Fatalf("merged count = %d, want 102", a.Count)
	}
	var sum int64
	for _, c := range a.Counts {
		sum += c
	}
	if sum != a.Count {
		t.Fatalf("bucket sum %d != count %d", sum, a.Count)
	}
	wantSum := int64(0)
	for i := int64(0); i < 100; i++ {
		wantSum += i * 1000
	}
	wantSum += 1 << 30
	if a.SumNanos != wantSum {
		t.Fatalf("sum = %d, want %d", a.SumNanos, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h LogHistogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %d, want 0", h.Quantile(0.5))
	}
	// 90 fast observations (~1µs) and 10 slow ones (~1ms): the p50 must
	// report a microsecond-scale bound, the p99 a millisecond-scale one.
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 1000 || p50 > 4096 {
		t.Errorf("p50 = %d, want a ~1µs bucket bound", p50)
	}
	if p99 < 1_000_000 || p99 > 4_194_304 {
		t.Errorf("p99 = %d, want a ~1ms bucket bound", p99)
	}
	if q := h.Quantile(1); q != p99 {
		t.Errorf("p100 = %d, want %d", q, p99)
	}
	// Overflow observations must yield a finite bound.
	var o LogHistogram
	o.Observe(math.MaxInt64)
	if q := o.Quantile(0.5); q <= 0 || q == math.MaxInt64 {
		t.Errorf("overflow quantile = %d, want finite positive", q)
	}
	if m := h.MeanNanos(); m <= 0 {
		t.Errorf("mean = %v, want positive", m)
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	var h LogHistogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
}
