package bandwidth

import (
	"math"
	"testing"
)

func TestTotalAndNormalized(t *testing.T) {
	u := New()
	u.Add(0, 15)
	u.AddLength(5, 9)
	u.AddLength(7, 2)
	if got := u.Total(); got != 26 {
		t.Errorf("Total = %v, want 26", got)
	}
	if got := u.NormalizedTotal(15); math.Abs(got-26.0/15.0) > 1e-12 {
		t.Errorf("NormalizedTotal = %v", got)
	}
	if got := u.Streams(); got != 3 {
		t.Errorf("Streams = %d, want 3", got)
	}
}

func TestAddIgnoresEmptyIntervals(t *testing.T) {
	u := New()
	u.Add(5, 5)
	u.Add(6, 4)
	if u.Total() != 0 || u.Streams() != 0 {
		t.Errorf("empty intervals should not be recorded")
	}
}

func TestNormalizedTotalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	New().NormalizedTotal(0)
}

func TestPeak(t *testing.T) {
	u := New()
	u.Add(0, 10)
	u.Add(2, 5)
	u.Add(4, 6)
	u.Add(5, 7)
	// Intervals [0,10),[2,5),[4,6),[5,7): during [4,5) three streams are
	// active; at time 5 the second ends as the fourth starts, so the peak
	// stays 3.
	if got := u.Peak(); got != 3 {
		t.Errorf("Peak = %d, want 3", got)
	}
}

func TestPeakEndBeforeStartAtTies(t *testing.T) {
	u := New()
	u.Add(0, 5)
	u.Add(5, 10)
	if got := u.Peak(); got != 1 {
		t.Errorf("back-to-back streams should peak at 1, got %d", got)
	}
	if New().Peak() != 0 {
		t.Errorf("empty usage should have zero peak")
	}
}

func TestAverage(t *testing.T) {
	u := New()
	u.Add(0, 10)
	u.Add(0, 5)
	// Over [0,10): total transmission time 15 -> average 1.5.
	if got := u.Average(0, 10); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Average = %v, want 1.5", got)
	}
	// Over [5,10): only the first stream is active.
	if got := u.Average(5, 10); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Average over [5,10) = %v, want 1", got)
	}
	if got := u.Average(3, 3); got != 0 {
		t.Errorf("degenerate window should average 0")
	}
}

func TestProfile(t *testing.T) {
	u := New()
	u.Add(0, 2)
	u.Add(1, 3)
	p := u.Profile(0, 4, 4)
	want := []int{1, 2, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Profile = %v, want %v", p, want)
		}
	}
	if u.Profile(0, 4, 0) != nil || u.Profile(4, 0, 2) != nil {
		t.Errorf("degenerate profiles should be nil")
	}
}

func TestIntervalsCopy(t *testing.T) {
	u := New()
	u.Add(1, 2)
	ivs := u.Intervals()
	ivs[0].Start = 99
	if u.Intervals()[0].Start != 1 {
		t.Errorf("Intervals should return a copy")
	}
}

func TestIntervalDuration(t *testing.T) {
	if (Interval{2, 5}).Duration() != 3 {
		t.Errorf("Duration wrong")
	}
	if (Interval{5, 2}).Duration() != 0 {
		t.Errorf("inverted interval should have zero duration")
	}
}

func TestPeakFig3Example(t *testing.T) {
	// The Fig. 3 schedule (L=15, n=8 optimal tree) has peak bandwidth 4.
	u := New()
	lengths := map[int64]int64{0: 15, 1: 1, 2: 2, 3: 5, 4: 1, 5: 9, 6: 1, 7: 2}
	for start, l := range lengths {
		u.AddLength(float64(start), float64(l))
	}
	if got := u.Peak(); got != 4 {
		t.Errorf("Peak = %d, want 4", got)
	}
	if got := u.Total(); got != 36 {
		t.Errorf("Total = %v, want 36", got)
	}
	if got := u.Average(0, 15); math.Abs(got-36.0/15.0) > 1e-12 {
		t.Errorf("Average = %v, want 2.4", got)
	}
}

// Edge cases: an empty usage, zero-width query windows, and non-positive
// sample counts must all degrade gracefully rather than divide by zero or
// panic — the live serving layer calls these on freshly started servers.

func TestEmptyUsageEdgeCases(t *testing.T) {
	u := New()
	if got := u.Peak(); got != 0 {
		t.Errorf("empty Peak = %d, want 0", got)
	}
	if got := u.Total(); got != 0 {
		t.Errorf("empty Total = %g, want 0", got)
	}
	if got := u.Average(0, 10); got != 0 {
		t.Errorf("empty Average = %g, want 0", got)
	}
	if got := u.Profile(0, 10, 4); len(got) != 4 {
		t.Fatalf("empty Profile length = %d, want 4", len(got))
	} else {
		for i, c := range got {
			if c != 0 {
				t.Errorf("empty Profile[%d] = %d, want 0", i, c)
			}
		}
	}
	if got := u.Streams(); got != 0 {
		t.Errorf("empty Streams = %d, want 0", got)
	}
	if got := u.Intervals(); len(got) != 0 {
		t.Errorf("empty Intervals = %v, want none", got)
	}
}

func TestZeroWidthWindows(t *testing.T) {
	u := New()
	u.Add(0, 10)
	u.Add(2, 5)
	if got := u.Average(3, 3); got != 0 {
		t.Errorf("Average over [3,3) = %g, want 0", got)
	}
	if got := u.Average(5, 3); got != 0 {
		t.Errorf("Average over inverted window = %g, want 0", got)
	}
	if got := u.Profile(3, 3, 5); got != nil {
		t.Errorf("Profile over [3,3) = %v, want nil", got)
	}
	if got := u.Profile(5, 3, 5); got != nil {
		t.Errorf("Profile over inverted window = %v, want nil", got)
	}
}

func TestProfileNonPositiveSamples(t *testing.T) {
	u := New()
	u.Add(0, 10)
	for _, samples := range []int{0, -1, -100} {
		if got := u.Profile(0, 10, samples); got != nil {
			t.Errorf("Profile with samples=%d = %v, want nil", samples, got)
		}
	}
}

func TestZeroWidthIntervalsIgnoredEverywhere(t *testing.T) {
	u := New()
	u.Add(4, 4)       // empty
	u.AddLength(7, 0) // empty
	u.Add(0, 2)
	if got := u.Streams(); got != 1 {
		t.Errorf("Streams = %d, want 1 (empty intervals dropped)", got)
	}
	if got := u.Peak(); got != 1 {
		t.Errorf("Peak = %d, want 1", got)
	}
	if got := u.Total(); got != 2 {
		t.Errorf("Total = %g, want 2", got)
	}
}
