// Package bandwidth accounts for server bandwidth usage of a set of
// streams.  The paper measures cost primarily as total bandwidth (the sum of
// stream lengths, equivalently the integral over time of the number of
// concurrently transmitting streams) normalized to complete media streams,
// and discusses peak (maximum instantaneous) bandwidth as the quantity that
// matters for a server carrying many media objects (Section 5).
package bandwidth

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a half-open transmission interval [Start, End) of one stream,
// in arbitrary time units.
type Interval struct {
	Start, End float64
}

// Duration returns End-Start (0 if the interval is empty or inverted).
func (iv Interval) Duration() float64 {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Usage aggregates a set of stream transmission intervals.
type Usage struct {
	intervals []Interval
}

// New returns an empty Usage.
func New() *Usage {
	return &Usage{}
}

// Add records one stream transmitting over [start, end).  Empty or inverted
// intervals are ignored.
func (u *Usage) Add(start, end float64) {
	if end <= start {
		return
	}
	u.intervals = append(u.intervals, Interval{Start: start, End: end})
}

// AddLength records one stream starting at start and transmitting for the
// given length of time.
func (u *Usage) AddLength(start, length float64) {
	u.Add(start, start+length)
}

// Streams returns the number of recorded streams.
func (u *Usage) Streams() int {
	return len(u.intervals)
}

// Total returns the total bandwidth in time units: the sum of all stream
// durations.
func (u *Usage) Total() float64 {
	t := 0.0
	for _, iv := range u.intervals {
		t += iv.Duration()
	}
	return t
}

// NormalizedTotal returns the total bandwidth in units of complete media
// streams of length L (the y-axis of Figs. 1, 11, 12).
func (u *Usage) NormalizedTotal(L float64) float64 {
	if L <= 0 {
		panic(fmt.Sprintf("bandwidth: NormalizedTotal requires L > 0, got %g", L))
	}
	return u.Total() / L
}

// Average returns the time-average number of concurrently transmitting
// streams over [from, to).
func (u *Usage) Average(from, to float64) float64 {
	if to <= from {
		return 0
	}
	total := 0.0
	for _, iv := range u.intervals {
		s, e := math.Max(iv.Start, from), math.Min(iv.End, to)
		if e > s {
			total += e - s
		}
	}
	return total / (to - from)
}

// Peak returns the maximum number of streams transmitting at the same time.
func (u *Usage) Peak() int {
	type event struct {
		t     float64
		delta int
	}
	events := make([]event, 0, 2*len(u.intervals))
	for _, iv := range u.intervals {
		if iv.Duration() == 0 {
			continue
		}
		events = append(events, event{iv.Start, +1}, event{iv.End, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // process ends before starts at ties
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Profile returns the number of active streams sampled at the start of each
// of `samples` equal sub-intervals of [from, to).
func (u *Usage) Profile(from, to float64, samples int) []int {
	if samples <= 0 || to <= from {
		return nil
	}
	out := make([]int, samples)
	step := (to - from) / float64(samples)
	for i := 0; i < samples; i++ {
		t := from + float64(i)*step
		count := 0
		for _, iv := range u.intervals {
			if iv.Start <= t && t < iv.End {
				count++
			}
		}
		out[i] = count
	}
	return out
}

// Intervals returns a copy of the recorded intervals.
func (u *Usage) Intervals() []Interval {
	return append([]Interval(nil), u.intervals...)
}
