package offline

import (
	"context"
	"math/rand"
	"testing"
)

// TestTablesMatchFastExactly is the required equivalence property: the
// flattened (and optionally parallel) DP must reproduce the mc and split
// tables of MergeCostTableFast bit for bit on random instances, in both
// receive models and for any worker count.
func TestTablesMatchFastExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(100)
		times := randomTimes(rng, n, 50)
		for _, model := range []Model{ReceiveTwo, ReceiveAll} {
			mc, split, err := MergeCostTableFast(times, model)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				tab, err := ComputeTables(context.Background(), times, model, 0, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					for j := i; j < n; j++ {
						if got, want := tab.MC(i, j), mc[i][j]; got != want {
							t.Fatalf("model %v workers %d: mc(%d,%d) = %v, want %v", model, workers, i, j, got, want)
						}
						if got, want := tab.Split(i, j), split[i][j]; got != want {
							t.Fatalf("model %v workers %d: split(%d,%d) = %d, want %d", model, workers, i, j, got, want)
						}
					}
				}
			}
		}
	}
}

// TestTablesParallelPoolExactly exercises the persistent worker pool (only
// engaged on diagonals of at least 512 rows) and checks bit-identical
// output against the serial [][] reference.
func TestTablesParallelPoolExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 700
	times := randomTimes(rng, n, 500)
	mc, split, err := MergeCostTableFast(times, ReceiveTwo)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ComputeTables(context.Background(), times, ReceiveTwo, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if tab.MC(i, j) != mc[i][j] || tab.Split(i, j) != split[i][j] {
				t.Fatalf("cell (%d,%d): got (%v,%d), want (%v,%d)",
					i, j, tab.MC(i, j), tab.Split(i, j), mc[i][j], split[i][j])
			}
		}
	}
}

// TestTablesBandedMatchesFull checks that banded tables agree with the full
// computation on every in-band cell and report the band size BandCells
// predicts.
func TestTablesBandedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(80)
		times := randomTimes(rng, n, 30)
		window := 1 + rng.Float64()*10
		full, err := ComputeTables(context.Background(), times, ReceiveTwo, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		banded, err := ComputeTables(context.Background(), times, ReceiveTwo, window, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := banded.Cells(), BandCells(times, window); got != want {
			t.Fatalf("banded cells = %d, BandCells predicts %d", got, want)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				in := times[j]-times[i] < window
				if in != banded.InBand(i, j) {
					t.Fatalf("InBand(%d,%d) = %v, want %v", i, j, banded.InBand(i, j), in)
				}
				if !in {
					continue
				}
				if banded.MC(i, j) != full.MC(i, j) || banded.Split(i, j) != full.Split(i, j) {
					t.Fatalf("banded cell (%d,%d) diverges from full", i, j)
				}
			}
		}
	}
}

// TestOptimalForestWorkersDeterministic checks the forest DP produces the
// same cost, roots, and trees for any worker count.
func TestOptimalForestWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(120)
		times := randomTimes(rng, n, 20)
		L := 2 + rng.Float64()*6
		serial, err := OptimalForestWorkers(context.Background(), times, L, ReceiveTwo, 1)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := OptimalForestWorkers(context.Background(), times, L, ReceiveTwo, 5)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Cost != parallel.Cost {
			t.Fatalf("cost diverges: %v vs %v", serial.Cost, parallel.Cost)
		}
		if len(serial.Roots) != len(parallel.Roots) {
			t.Fatalf("roots diverge: %v vs %v", serial.Roots, parallel.Roots)
		}
		for i := range serial.Roots {
			if serial.Roots[i] != parallel.Roots[i] {
				t.Fatalf("roots diverge: %v vs %v", serial.Roots, parallel.Roots)
			}
		}
	}
}

// TestMemoryBytesAccounting sanity-checks the 12-bytes-per-cell estimate
// used by policy.OfflineOptimal to refuse over-sized instances.
func TestMemoryBytesAccounting(t *testing.T) {
	times := randomTimes(rand.New(rand.NewSource(1)), 100, 10)
	tab, err := ComputeTables(context.Background(), times, ReceiveTwo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tab.MemoryBytes(), int64(100*101/2*12); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}
