package offline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/dyadic"
	"repro/internal/mergetree"
)

func slotTimes(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func randomTimes(rng *rand.Rand, n int, span float64) []float64 {
	out := make([]float64, n)
	set := map[float64]bool{}
	for i := range out {
		for {
			v := rng.Float64() * span
			if !set[v] {
				set[v] = true
				out[i] = v
				break
			}
		}
	}
	sortFloats(out)
	return out
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestModelString(t *testing.T) {
	if ReceiveTwo.String() != "receive-two" || ReceiveAll.String() != "receive-all" {
		t.Errorf("model names wrong")
	}
	if Model(9).String() == "" {
		t.Errorf("unknown model should still format")
	}
}

func TestValidateTimes(t *testing.T) {
	if err := validateTimes([]float64{1, 2, 2}); err == nil {
		t.Errorf("non-increasing times should fail")
	}
	if err := validateTimes([]float64{math.NaN()}); err == nil {
		t.Errorf("NaN should fail")
	}
	if err := validateTimes([]float64{0, 1, 2}); err != nil {
		t.Errorf("valid times rejected: %v", err)
	}
	if _, _, err := MergeCostTable([]float64{2, 1}, ReceiveTwo); err == nil {
		t.Errorf("MergeCostTable should propagate validation errors")
	}
	if _, _, err := MergeCostTableFast([]float64{2, 1}, ReceiveTwo); err == nil {
		t.Errorf("MergeCostTableFast should propagate validation errors")
	}
	if _, err := MergeCost([]float64{2, 1}, ReceiveTwo); err == nil {
		t.Errorf("MergeCost should propagate validation errors")
	}
}

func TestSlottedMatchesClosedForm(t *testing.T) {
	// With arrivals at 0,1,...,n-1 the general DP must reproduce the paper's
	// closed forms M(n) and Mw(n).
	for n := 1; n <= 60; n++ {
		times := slotTimes(n)
		mc, err := MergeCost(times, ReceiveTwo)
		if err != nil {
			t.Fatal(err)
		}
		if int64(math.Round(mc)) != core.MergeCost(int64(n)) {
			t.Errorf("general DP merge cost for n=%d is %v, want %d", n, mc, core.MergeCost(int64(n)))
		}
		ma, err := MergeCost(times, ReceiveAll)
		if err != nil {
			t.Fatal(err)
		}
		if int64(math.Round(ma)) != core.MergeCostAll(int64(n)) {
			t.Errorf("general DP receive-all cost for n=%d is %v, want %d", n, ma, core.MergeCostAll(int64(n)))
		}
	}
}

func TestFastMatchesPlainDP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(40)
		times := randomTimes(rng, n, 10)
		for _, model := range []Model{ReceiveTwo, ReceiveAll} {
			plain, _, err := MergeCostTable(times, model)
			if err != nil {
				t.Fatal(err)
			}
			fast, _, err := MergeCostTableFast(times, model)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					if math.Abs(plain[i][j]-fast[i][j]) > 1e-9 {
						t.Fatalf("trial %d model %v: interval [%d,%d]: plain %v fast %v (times %v)",
							trial, model, i, j, plain[i][j], fast[i][j], times)
					}
				}
			}
		}
	}
}

func TestOptimalTreeMatchesCostAndIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		times := randomTimes(rng, n, 5)
		tr, cost, err := OptimalTree(times, ReceiveTwo)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Size() != n {
			t.Fatalf("tree has %d nodes, want %d", tr.Size(), n)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid tree: %v", err)
		}
		if err := tr.ValidatePreorder(); err != nil {
			t.Fatalf("preorder violated: %v", err)
		}
		if math.Abs(tr.MergeCost()-cost) > 1e-9 {
			t.Fatalf("tree cost %v != DP cost %v", tr.MergeCost(), cost)
		}
		// Receive-all tree as well.
		trA, costA, err := OptimalTree(times, ReceiveAll)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(trA.MergeCostAll()-costA) > 1e-9 {
			t.Fatalf("receive-all tree cost %v != DP cost %v", trA.MergeCostAll(), costA)
		}
		if costA > cost+1e-9 {
			t.Fatalf("receive-all optimum %v worse than receive-two optimum %v", costA, cost)
		}
	}
}

func TestOptimalTreeErrors(t *testing.T) {
	if _, _, err := OptimalTree(nil, ReceiveTwo); err == nil {
		t.Errorf("empty input should fail")
	}
	if _, _, err := OptimalTree([]float64{3, 1}, ReceiveTwo); err == nil {
		t.Errorf("unsorted input should fail")
	}
}

func TestMergeCostEmptyAndSingle(t *testing.T) {
	if c, err := MergeCost(nil, ReceiveTwo); err != nil || c != 0 {
		t.Errorf("empty merge cost should be 0")
	}
	if c, err := MergeCost([]float64{3.5}, ReceiveTwo); err != nil || c != 0 {
		t.Errorf("single arrival merge cost should be 0")
	}
}

func TestOptimalTreeBeatsDyadicAndEveryEnumeratedTree(t *testing.T) {
	// The DP optimum must be a lower bound for the dyadic heuristic and for
	// every enumerated merge tree over the same arrivals.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		times := randomTimes(rng, n, 0.9)
		_, opt, err := OptimalTree(times, ReceiveTwo)
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate all shapes (reusing the slotted enumerator's shapes and
		// relabeling with the real times).
		for _, shape := range mergetree.Enumerate(0, n) {
			rt := relabel(shape, times)
			if rt.MergeCost() < opt-1e-9 {
				t.Fatalf("enumerated tree beats the DP optimum: %v < %v", rt.MergeCost(), opt)
			}
		}
		// Dyadic (single tree regime: beta = 1).
		f, err := dyadic.BuildForest(times, 1.0, dyadic.Params{Alpha: 2, Beta: 1})
		if err != nil {
			t.Fatal(err)
		}
		if f.Streams() == 1 {
			dy := f.Trees[0].MergeCost()
			if dy < opt-1e-9 {
				t.Fatalf("dyadic tree cost %v below the optimum %v", dy, opt)
			}
		}
	}
}

func relabel(shape *mergetree.Tree, times []float64) *mergetree.RTree {
	rt := mergetree.NewR(times[shape.Arrival])
	for _, c := range shape.Children {
		rt.AddChild(relabel(c, times))
	}
	return rt
}

func TestOptimalForestSlottedMatchesCore(t *testing.T) {
	// With slot arrivals and integer L the general forest DP must reproduce
	// the delay-guaranteed optimum F(L,n).
	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 14}, {4, 16}, {8, 30}, {30, 60}} {
		res, err := OptimalForest(slotTimes(int(c.n)), float64(c.L), ReceiveTwo)
		if err != nil {
			t.Fatal(err)
		}
		if int64(math.Round(res.Cost)) != core.FullCost(c.L, c.n) {
			t.Errorf("L=%d n=%d: general DP cost %v, slotted optimum %d", c.L, c.n, res.Cost, core.FullCost(c.L, c.n))
		}
		if int64(len(res.Roots)) != core.OptimalStreamCount(c.L, c.n) {
			// The number of roots may differ if several stream counts tie;
			// only the cost must match.
			if int64(math.Round(res.Cost)) != core.FullCost(c.L, c.n) {
				t.Errorf("L=%d n=%d: root count %d", c.L, c.n, len(res.Roots))
			}
		}
	}
}

func TestOptimalForestStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(40)
		times := randomTimes(rng, n, 3)
		res, err := OptimalForest(times, 1.0, ReceiveTwo)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Forest.Validate(); err != nil {
			t.Fatalf("forest invalid: %v", err)
		}
		if res.Forest.Size() != n {
			t.Fatalf("forest covers %d arrivals, want %d", res.Forest.Size(), n)
		}
		if math.Abs(res.Forest.FullCost()-res.Cost) > 1e-9 {
			t.Fatalf("forest cost %v != DP cost %v", res.Forest.FullCost(), res.Cost)
		}
		if res.NormalizedCost() < float64(len(res.Roots))-1e-9 {
			t.Fatalf("normalized cost below the number of full streams")
		}
		// First arrival is always a root.
		if len(res.Roots) == 0 || res.Roots[0] != 0 {
			t.Fatalf("the first arrival must start a full stream: %v", res.Roots)
		}
	}
}

func TestOptimalForestIsLowerBoundForHeuristics(t *testing.T) {
	// The exact off-line optimum must never exceed the dyadic heuristic's
	// cost on the same trace.
	for seed := int64(0); seed < 8; seed++ {
		tr := arrivals.Poisson(0.02, 4, seed)
		if len(tr) < 2 {
			continue
		}
		res, err := OptimalForest(tr, 1.0, ReceiveTwo)
		if err != nil {
			t.Fatal(err)
		}
		dy, err := dyadic.TotalCost(tr, 1.0, dyadic.GoldenPoisson())
		if err != nil {
			t.Fatal(err)
		}
		if res.NormalizedCost() > dy+1e-9 {
			t.Errorf("seed %d: optimal %.4f exceeds dyadic %.4f", seed, res.NormalizedCost(), dy)
		}
	}
}

func TestOptimalForestErrors(t *testing.T) {
	if _, err := OptimalForest([]float64{0, 1}, 0, ReceiveTwo); err == nil {
		t.Errorf("non-positive L should fail")
	}
	if _, err := OptimalForest([]float64{1, 0}, 1, ReceiveTwo); err == nil {
		t.Errorf("unsorted times should fail")
	}
	res, err := OptimalForest(nil, 1, ReceiveTwo)
	if err != nil || res.Forest.Size() != 0 {
		t.Errorf("empty input should give an empty forest")
	}
}

func TestOptimalForestReceiveAllCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	times := randomTimes(rng, 30, 2)
	two, err := OptimalForest(times, 1.0, ReceiveTwo)
	if err != nil {
		t.Fatal(err)
	}
	all, err := OptimalForest(times, 1.0, ReceiveAll)
	if err != nil {
		t.Fatal(err)
	}
	if all.Cost > two.Cost+1e-9 {
		t.Errorf("receive-all optimum %v exceeds receive-two optimum %v", all.Cost, two.Cost)
	}
}

func BenchmarkMergeCostTableFast(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	times := randomTimes(rng, 300, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MergeCostTableFast(times, ReceiveTwo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeCostTablePlain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	times := randomTimes(rng, 300, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MergeCostTable(times, ReceiveTwo); err != nil {
			b.Fatal(err)
		}
	}
}
