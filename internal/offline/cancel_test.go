package offline

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// cancelN is large enough that the interval DP cannot complete between the
// goroutine starting and the cancel landing (n(n+1)/2 = 8M cells, tens of
// milliseconds even fully parallel), so the cancel always interrupts a
// running computation.
const cancelN = 4000

// runCanceled starts ComputeTables on a big instance, cancels the context
// almost immediately, and returns the error along with how long the call
// took to come back after the cancel.
func runCanceled(t *testing.T, workers int) (error, time.Duration) {
	t.Helper()
	times := randomTimes(rand.New(rand.NewSource(5)), cancelN, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ComputeTables(ctx, times, ReceiveTwo, 0, workers)
		errc <- err
	}()
	time.Sleep(time.Millisecond)
	canceledAt := time.Now()
	cancel()
	select {
	case err := <-errc:
		return err, time.Since(canceledAt)
	case <-time.After(30 * time.Second):
		t.Fatalf("ComputeTables(workers=%d) did not return after cancel", workers)
		return nil, 0
	}
}

// TestComputeTablesCancel proves the acceptance property: a running offline
// DP aborts promptly (within one work unit — one serial row or one diagonal
// chunk) once ctx is done, returns an error satisfying
// errors.Is(err, context.Canceled), and leaks no pool goroutines.
func TestComputeTablesCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		err, wait := runCanceled(t, workers)
		if err == nil {
			t.Fatalf("workers=%d: ComputeTables returned nil after cancel", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error %v does not wrap context.Canceled", workers, err)
		}
		// One work unit is a fraction of the full DP (thousands of rows /
		// chunks); 5s is an extremely generous bound for it on any machine,
		// while the full n=4000 DP being aborted is what's measured here.
		if wait > 5*time.Second {
			t.Fatalf("workers=%d: returned %v after cancel, want well under one DP", workers, wait)
		}
		// The worker pool must be joined before ComputeTables returns.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Fatalf("workers=%d: %d goroutines before, %d after cancel (pool leaked)", workers, before, got)
		}
	}
}

// TestComputeTablesPreCanceled pins the fast path: an already-canceled
// context returns before any table is allocated.
func TestComputeTablesPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	times := randomTimes(rand.New(rand.NewSource(6)), 50, 10)
	if _, err := ComputeTables(ctx, times, ReceiveTwo, 0, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ComputeTables error = %v, want context.Canceled", err)
	}
}

// TestOptimalForestWorkersCancel checks the cancellation surfaces through
// the forest-level API unchanged.
func TestOptimalForestWorkersCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	times := randomTimes(rand.New(rand.NewSource(8)), 80, 10)
	if _, err := OptimalForestWorkers(ctx, times, 5, ReceiveTwo, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimalForestWorkers error = %v, want context.Canceled", err)
	}
}
