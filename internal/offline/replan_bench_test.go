package offline

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// replanArrivals builds a deterministic Poisson-like epoch trace: n
// arrivals with exponential spacing at the given mean.
func replanArrivals(n int, mean float64) []float64 {
	rng := rand.New(rand.NewSource(31))
	out := make([]float64, n)
	at := 0.0
	for i := range out {
		at += rng.ExpFloat64() * mean
		out[i] = at
	}
	return out
}

// Epoch-replan benchmark shape: one epoch's worth of arrivals, a media
// window short enough to band the DP, and a warm handle that has already
// absorbed `overlap` percent of the epoch when the replan fires.
const (
	replanN    = 4000
	replanMean = 0.005
	replanL    = 2.0
)

// BenchmarkEpochReplanCold is the status-quo epoch boundary: the full
// banded Knuth DP plus the partition DP, from scratch, every epoch.
func BenchmarkEpochReplanCold(b *testing.B) {
	times := replanArrivals(replanN, replanMean)
	ctx := context.Background()
	for _, overlap := range []int{50, 90, 99} {
		b.Run(fmt.Sprintf("overlap=%d%%", overlap), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := OptimalForestWorkers(ctx, times, replanL, ReceiveTwo, 1)
				if err != nil {
					b.Fatal(err)
				}
				_ = f.Cost
			}
		})
	}
}

// BenchmarkEpochReplanWarm measures the same replan when a retained table
// has already absorbed overlap% of the epoch's arrivals: the boundary pays
// only for extending the tables and partition over the un-absorbed tail.
// The acceptance bar is >= 5x over cold at 90% overlap.
func BenchmarkEpochReplanWarm(b *testing.B) {
	times := replanArrivals(replanN, replanMean)
	ctx := context.Background()
	for _, overlap := range []int{50, 90, 99} {
		b.Run(fmt.Sprintf("overlap=%d%%", overlap), func(b *testing.B) {
			k := replanN * overlap / 100
			base, err := ComputeTables(ctx, nil, ReceiveTwo, replanL, 1)
			if err != nil {
				b.Fatal(err)
			}
			// Absorb the shared prefix in two steps so the handle carries
			// the capacity headroom a live mid-epoch handle would have.
			if err := base.Extend(ctx, times[:k/2], 1); err != nil {
				b.Fatal(err)
			}
			if err := base.Extend(ctx, times[k/2:k], 1); err != nil {
				b.Fatal(err)
			}
			if err := base.AdvancePartition(replanL); err != nil {
				b.Fatal(err)
			}
			tail := times[k:]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				warm := base.Clone()
				b.StartTimer()
				if err := warm.Extend(ctx, tail, 1); err != nil {
					b.Fatal(err)
				}
				f, err := warm.SolveForest(replanL)
				if err != nil {
					b.Fatal(err)
				}
				_ = f.Cost
			}
		})
	}
}
