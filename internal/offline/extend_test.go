package offline

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/moderr"
)

// sameCells fails the test unless warm and cold agree on every structural
// field and every in-band cell, bit for bit.
func sameCells(t *testing.T, warm, cold *Tables, label string) {
	t.Helper()
	if warm.N() != cold.N() {
		t.Fatalf("%s: n = %d, want %d", label, warm.N(), cold.N())
	}
	if warm.Cells() != cold.Cells() {
		t.Fatalf("%s: cells = %d, want %d", label, warm.Cells(), cold.Cells())
	}
	n := cold.N()
	for i := 0; i < n; i++ {
		if warm.Limit(i) != cold.Limit(i) {
			t.Fatalf("%s: limit(%d) = %d, want %d", label, i, warm.Limit(i), cold.Limit(i))
		}
		for j := i; j <= cold.Limit(i); j++ {
			if warm.MC(i, j) != cold.MC(i, j) {
				t.Fatalf("%s: mc(%d,%d) = %v, want %v", label, i, j, warm.MC(i, j), cold.MC(i, j))
			}
			if warm.Split(i, j) != cold.Split(i, j) {
				t.Fatalf("%s: split(%d,%d) = %d, want %d", label, i, j, warm.Split(i, j), cold.Split(i, j))
			}
		}
	}
}

// TestExtendMatchesColdExactly is the warm-start correctness property: a
// table grown by K Extend calls over epoch suffixes must equal one cold
// ComputeTables run on the concatenated arrivals, cell for cell and cost
// for cost, across band widths, worker counts, and receive models.
func TestExtendMatchesColdExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(120)
		times := randomTimes(rng, n, 40)
		window := 0.0 // unbanded
		if trial%2 == 1 {
			window = 1 + rng.Float64()*12
		}
		model := ReceiveTwo
		if trial%3 == 2 {
			model = ReceiveAll
		}
		for _, workers := range []int{1, 4} {
			cold, err := ComputeTables(ctx, times, model, window, workers)
			if err != nil {
				t.Fatal(err)
			}
			// Grow the same table in K random chunks (some possibly empty).
			chunks := 1 + rng.Intn(6)
			warm := &Tables{model: model, window: window}
			at := 0
			for c := 0; c < chunks; c++ {
				end := at + rng.Intn(n-at+1)
				if c == chunks-1 {
					end = n
				}
				if err := warm.Extend(ctx, times[at:end], workers); err != nil {
					t.Fatalf("Extend[%d:%d]: %v", at, end, err)
				}
				at = end
			}
			sameCells(t, warm, cold, "chunked")
			// One-by-one extends stress the in-place slide path.
			if n <= 60 {
				one := &Tables{model: model, window: window}
				for i := 0; i < n; i++ {
					if err := one.Extend(ctx, times[i:i+1], workers); err != nil {
						t.Fatalf("Extend one-by-one at %d: %v", i, err)
					}
				}
				sameCells(t, one, cold, "one-by-one")
			}
		}
	}
}

// TestSolveForestResumable interleaves Extend with SolveForest and checks
// each intermediate forest is bit-identical to a cold OptimalForestWorkers
// run over the same prefix — the exact shape of warm epoch replanning.
func TestSolveForestResumable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(100)
		times := randomTimes(rng, n, 25)
		L := 3 + rng.Float64()*6
		warm, err := ComputeTables(ctx, nil, ReceiveTwo, L, 1)
		if err != nil {
			t.Fatal(err)
		}
		at := 0
		for at < n {
			end := at + 1 + rng.Intn(n-at)
			if err := warm.Extend(ctx, times[at:end], 1); err != nil {
				t.Fatal(err)
			}
			at = end
			got, err := warm.SolveForest(L)
			if err != nil {
				t.Fatal(err)
			}
			want, err := OptimalForestWorkers(ctx, times[:at], L, ReceiveTwo, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost {
				t.Fatalf("prefix %d: cost %v, want %v", at, got.Cost, want.Cost)
			}
			if len(got.Roots) != len(want.Roots) {
				t.Fatalf("prefix %d: roots %v, want %v", at, got.Roots, want.Roots)
			}
			for i := range got.Roots {
				if got.Roots[i] != want.Roots[i] {
					t.Fatalf("prefix %d: roots %v, want %v", at, got.Roots, want.Roots)
				}
			}
		}
	}
}

// TestExtendValidation pins the error behavior: non-monotone suffixes and
// arrivals that do not continue the table are ErrBadInstance, and extending
// with a canceled context reports the cancellation without mutating n.
func TestExtendValidation(t *testing.T) {
	ctx := context.Background()
	tab, err := ComputeTables(ctx, []float64{1, 2, 3}, ReceiveTwo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Extend(ctx, []float64{5, 4}, 1); !errors.Is(err, moderr.ErrBadInstance) {
		t.Fatalf("non-monotone suffix: err = %v, want ErrBadInstance", err)
	}
	if err := tab.Extend(ctx, []float64{3}, 1); !errors.Is(err, moderr.ErrBadInstance) {
		t.Fatalf("non-continuing suffix: err = %v, want ErrBadInstance", err)
	}
	if err := tab.Extend(ctx, nil, 1); err != nil {
		t.Fatalf("empty suffix: err = %v, want nil", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if err := tab.Extend(canceled, []float64{9}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled extend: err = %v, want context.Canceled", err)
	}
	if tab.N() != 3 {
		t.Fatalf("n after failed extends = %d, want 3", tab.N())
	}
}

// TestCloneIndependent checks a clone can be extended without disturbing
// the original — the pattern the replan benchmarks rely on.
func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	times := randomTimes(rng, 80, 20)
	base, err := ComputeTables(ctx, times[:50], ReceiveTwo, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ComputeTables(ctx, times[:50], ReceiveTwo, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := base.Clone()
	if err := cl.Extend(ctx, times[50:], 1); err != nil {
		t.Fatal(err)
	}
	sameCells(t, base, want, "original after clone-extend")
	cold, err := ComputeTables(ctx, times, ReceiveTwo, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameCells(t, cl, cold, "extended clone")
}
