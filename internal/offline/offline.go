// Package offline implements optimal off-line stream merging for general
// (real-valued) arrival times — the substrate result of Bar-Noy and Ladner
// ("Efficient algorithms for optimal stream merging for media-on-demand",
// reference [6] of the paper) that the delay-guaranteed paper builds on and
// improves for the slotted case.
//
// Given arrival times t_0 < t_1 < ... < t_{n-1} and a media length L, the
// package computes
//
//   - the optimal merge cost of a single merge tree over any interval of
//     arrivals (receive-two and receive-all models), via the dynamic program
//     implied by Lemma 2 of the paper:
//     MC(i,j) = min_h { MC(i,h-1) + MC(h,j) + (2 t_j − t_h − t_i) },
//   - the optimal merge forest (which arrivals start full streams and how
//     the remaining arrivals merge), and
//   - the corresponding merge trees.
//
// Three implementations of the interval DP are provided: a plain O(n^3)
// reference (MergeCostTable), a split-monotonicity accelerated variant
// (Knuth-style bounds, MergeCostTableFast) that runs in O(n^2) in practice,
// and the production path ComputeTables, which runs the same accelerated
// recurrence in flat banded triangular storage — 12 bytes per cell instead
// of 32 — either row-major serially or with each DP diagonal sharded across
// a worker pool.  The tables are resumable: Tables.Extend appends an
// arrival suffix to an existing solve, filling only the band cells whose
// interval touches the new arrivals, bit-identical to a cold ComputeTables
// over the concatenation — the warm-start substrate of the live layer's
// epoch replanning (AdvancePartition and SolveForest resume the forest
// partition the same way).  The test suite cross-validates all variants
// cell for cell on random instances and against the closed forms of the
// slotted case.  The package is used as the exact-optimum baseline for
// evaluating the on-line algorithms on general arrival sequences.
package offline

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/mergetree"
	"repro/internal/moderr"
)

// Model selects the client receive capability.
type Model int

const (
	// ReceiveTwo allows a client to receive two streams at once (the
	// paper's main model).
	ReceiveTwo Model = iota
	// ReceiveAll allows a client to receive any number of streams at once.
	ReceiveAll
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case ReceiveTwo:
		return "receive-two"
	case ReceiveAll:
		return "receive-all"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// validateTimes checks that the arrival times are finite and strictly
// increasing.
func validateTimes(times []float64) error {
	for i, t := range times {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("%w: offline: invalid arrival time %g at index %d", moderr.ErrBadInstance, t, i)
		}
		if i > 0 && t <= times[i-1] {
			return fmt.Errorf("%w: offline: arrival times must be strictly increasing (index %d: %g after %g)",
				moderr.ErrBadInstance, i, t, times[i-1])
		}
	}
	return nil
}

// edgeCost returns the cost contribution of making arrival h the last merge
// into the root i of a tree whose last arrival is j (Lemma 2 and its
// receive-all analogue, Lemma 18).
func edgeCost(times []float64, i, h, j int, model Model) float64 {
	if model == ReceiveAll {
		return times[j] - times[i]
	}
	return 2*times[j] - times[h] - times[i]
}

// MergeCostTable computes mc[i][j], the optimal merge cost of a single merge
// tree over the arrivals i..j (rooted at i), for all 0 <= i <= j < n, using
// the plain O(n^3) dynamic program.  It also returns the chosen last-merge
// split split[i][j] (0 when i == j).
func MergeCostTable(times []float64, model Model) (mc [][]float64, split [][]int, err error) {
	if err := validateTimes(times); err != nil {
		return nil, nil, err
	}
	n := len(times)
	mc = make([][]float64, n)
	split = make([][]int, n)
	for i := range mc {
		mc[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			best := math.Inf(1)
			bestH := i + 1
			for h := i + 1; h <= j; h++ {
				c := mc[i][h-1] + mc[h][j] + edgeCost(times, i, h, j, model)
				if c < best {
					best, bestH = c, h
				}
			}
			mc[i][j] = best
			split[i][j] = bestH
		}
	}
	return mc, split, nil
}

// MergeCostTableFast is MergeCostTable with the split-monotonicity
// acceleration: when searching for the best last merge of the interval
// [i, j], only splits between the optima of [i, j-1] and [i+1, j] are
// examined.  For the cost structure of stream merging the optimal split is
// monotone (the same structural fact behind Observation 4 of the paper), so
// the total work is O(n^2); the test suite cross-validates the result
// against the plain DP on random instances.
func MergeCostTableFast(times []float64, model Model) (mc [][]float64, split [][]int, err error) {
	if err := validateTimes(times); err != nil {
		return nil, nil, err
	}
	n := len(times)
	mc = make([][]float64, n)
	split = make([][]int, n)
	for i := range mc {
		mc[i] = make([]float64, n)
		split[i] = make([]int, n)
		if i+1 < n {
			split[i][i+1] = i + 1
			mc[i][i+1] = edgeCost(times, i, i+1, i+1, model)
		}
	}
	for length := 3; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			lo := split[i][j-1]
			hi := split[i+1][j]
			if lo < i+1 {
				lo = i + 1
			}
			if hi > j {
				hi = j
			}
			if hi < lo {
				hi = lo
			}
			best := math.Inf(1)
			bestH := lo
			for h := lo; h <= hi; h++ {
				c := mc[i][h-1] + mc[h][j] + edgeCost(times, i, h, j, model)
				if c < best {
					best, bestH = c, h
				}
			}
			mc[i][j] = best
			split[i][j] = bestH
		}
	}
	return mc, split, nil
}

// MergeCost returns the optimal merge cost of a single tree over all the
// given arrivals in the chosen model.
func MergeCost(times []float64, model Model) (float64, error) {
	if len(times) == 0 {
		return 0, nil
	}
	//modlint:ignore ctxflow MergeCost is the ctx-free compatibility wrapper; callers wanting cancellation use ComputeTables directly
	t, err := ComputeTables(context.Background(), times, model, 0, 0)
	if err != nil {
		return 0, err
	}
	return t.MC(0, len(times)-1), nil
}

// BuildTree reconstructs an optimal merge tree over the arrivals i..j from a
// split table produced by MergeCostTable or MergeCostTableFast.
func BuildTree(times []float64, split [][]int, i, j int) *mergetree.RTree {
	if i == j {
		return mergetree.NewR(times[i])
	}
	h := split[i][j]
	left := BuildTree(times, split, i, h-1)
	right := BuildTree(times, split, h, j)
	left.AddChild(right)
	return left
}

// OptimalTree returns an optimal merge tree over all the arrivals in the
// chosen model, together with its merge cost.
func OptimalTree(times []float64, model Model) (*mergetree.RTree, float64, error) {
	if len(times) == 0 {
		return nil, 0, fmt.Errorf("%w: offline: no arrivals", moderr.ErrBadInstance)
	}
	//modlint:ignore ctxflow OptimalTree is the ctx-free compatibility wrapper over ComputeTables
	t, err := ComputeTables(context.Background(), times, model, 0, 0)
	if err != nil {
		return nil, 0, err
	}
	n := len(times)
	return t.BuildTree(times, 0, n-1), t.MC(0, n-1), nil
}

// Forest is the result of the full off-line optimization: which arrivals
// start full streams and how everything merges.
type Forest struct {
	// Forest is the resulting merge forest (roots own full streams of
	// length L).
	Forest *mergetree.RForest
	// Cost is the total server bandwidth: roots*L plus all merge costs.
	Cost float64
	// Roots are the indices of the arrivals that start full streams.
	Roots []int
}

// OptimalForest solves the general off-line problem: partition the arrivals
// into consecutive groups, give each group's first arrival a full stream of
// length L, and merge the rest optimally, minimizing total bandwidth.  The
// optimal partition is found by a prefix dynamic program on top of the
// interval merge costs; a group starting at arrival i may extend to arrival
// j only while times[j] - times[i] < L (later clients could not receive the
// root's data otherwise).
func OptimalForest(times []float64, L float64, model Model) (*Forest, error) {
	//modlint:ignore ctxflow OptimalForest is the ctx-free compatibility wrapper over OptimalForestWorkers
	return OptimalForestWorkers(context.Background(), times, L, model, 0)
}

// OptimalForestWorkers is OptimalForest with an explicit context and DP
// worker count (0 means GOMAXPROCS).  The interval DP is computed in banded
// flat storage: a group rooted at arrival i can only extend while
// times[j] - times[i] < L, so only the O(n * W) intervals inside an L-window
// are materialized, where W is the largest number of arrivals in any such
// window — the reason the arrival cap of policy.OfflineOptimal could be
// raised 10x.  Cancelling ctx aborts the underlying DP within one work unit
// and returns an error wrapping ctx.Err().
func OptimalForestWorkers(ctx context.Context, times []float64, L float64, model Model, workers int) (*Forest, error) {
	if err := validateTimes(times); err != nil {
		return nil, err
	}
	if L <= 0 {
		return nil, fmt.Errorf("%w: offline: media length must be positive, got %g", moderr.ErrBadInstance, L)
	}
	if len(times) == 0 {
		return &Forest{Forest: mergetree.NewRForest(L)}, nil
	}
	t, err := ComputeTables(ctx, times, model, L, workers)
	if err != nil {
		return nil, err
	}
	return t.SolveForest(L)
}

// AdvancePartition runs the resumable group-partition prefix DP up to the
// table's current arrival count without reconstructing the forest.  best[j]
// depends only on earlier prefixes, so after an Extend only the appended
// suffix is solved; a warm replanner calls this during absorption so the
// final SolveForest pays only for the un-absorbed tail.  The table's band
// must cover the L-window — it does whenever the table was built with
// window L or unbanded.
func (t *Tables) AdvancePartition(L float64) error {
	if L <= 0 {
		return fmt.Errorf("%w: offline: media length must be positive, got %g", moderr.ErrBadInstance, L)
	}
	if t.window > 0 && !math.IsInf(t.window, 1) && L > t.window {
		return fmt.Errorf("%w: offline: partition window %g exceeds the table band %g", moderr.ErrBadInstance, L, t.window)
	}
	n := t.n
	if t.solvedL != L {
		t.solved = 0
		t.solvedL = L
	}
	if t.solved >= n {
		return nil
	}
	if cap(t.best) < n+1 {
		nb := make([]float64, len(t.best), n+1+(n+1)/2)
		copy(nb, t.best)
		nc := make([]int32, len(t.choice), cap(nb))
		copy(nc, t.choice)
		t.best, t.choice = nb, nc
	}
	t.best = t.best[:n+1]
	t.choice = t.choice[:n+1]
	t.best[0] = 0
	t.choice[0] = 0
	const inf = math.MaxFloat64
	times := t.times
	// best[j] = minimum cost of serving arrivals 0..j-1.
	for j := t.solved + 1; j <= n; j++ {
		best := inf
		pick := 0
		for i := j - 1; i >= 0; i-- {
			if times[j-1]-times[i] >= L {
				break
			}
			c := t.best[i] + L + t.MC(i, j-1)
			if c < best {
				best = c
				pick = i
			}
		}
		if best == inf {
			t.solved = j - 1
			return fmt.Errorf("%w: offline: arrival %d cannot be covered (gap exceeds media length)", moderr.ErrBadInstance, j-1)
		}
		t.best[j] = best
		t.choice[j] = int32(pick)
	}
	t.solved = n
	return nil
}

// SolveForest runs the group-partition DP over the table's arrivals:
// partition them into consecutive groups, give each group's first arrival a
// full stream of length L, and merge the rest optimally (the same
// optimization as OptimalForest, on tables the caller may have built
// incrementally with Extend).  Thanks to AdvancePartition's resumable
// prefix DP, repeated SolveForest calls with the same L cost O(new
// arrivals) plus the reconstruction, not O(n * window).  The result is
// bit-identical to a cold OptimalForestWorkers run over the same arrivals,
// whichever sequence of Extend calls produced the table.
func (t *Tables) SolveForest(L float64) (*Forest, error) {
	if err := t.AdvancePartition(L); err != nil {
		return nil, err
	}
	n := t.n
	if n == 0 {
		return &Forest{Forest: mergetree.NewRForest(L)}, nil
	}
	times := t.times
	// Reconstruct the groups.
	var roots []int
	for j := n; j > 0; j = int(t.choice[j]) {
		roots = append(roots, int(t.choice[j]))
	}
	sort.Ints(roots)
	forest := mergetree.NewRForest(L)
	for gi, start := range roots {
		end := n - 1
		if gi+1 < len(roots) {
			end = roots[gi+1] - 1
		}
		forest.Add(t.BuildTree(times, start, end))
	}
	return &Forest{Forest: forest, Cost: t.best[n], Roots: roots}, nil
}

// NormalizedCost returns the forest cost in units of complete media streams.
func (f *Forest) NormalizedCost() float64 {
	if f.Forest == nil || f.Forest.L <= 0 {
		return 0
	}
	return f.Cost / f.Forest.L
}
