package offline

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/mergetree"
	"repro/internal/moderr"
)

// Tables is the interval merge-cost dynamic program in flat storage: one
// contiguous []float64 for the costs and one []int32 for the splits, packed
// triangularly and optionally banded.  Compared with the [][]float64 +
// [][]int tables of MergeCostTableFast this representation
//
//   - stores only the upper triangle (the DP never reads i > j), and
//   - uses int32 splits (4 bytes instead of 8),
//
// which together cut memory to 6 n^2 bytes from 16 n^2 — 37.5% — for the
// unbanded case, and far less when a window bound applies.  Row starts are
// precomputed so every (i, j) access is one add and one load, keeping the
// inner DP loop on two cache-resident arrays.
//
// When a window w > 0 is given, only the intervals [i, j] with
// times[j] - times[i] < w are stored.  Every sub-interval of a stored
// interval is stored too, so the DP is closed over the band; this is exactly
// the set of intervals OptimalForest can ever use, because a merge tree
// rooted at arrival i can only span clients that arrive while the root's
// full stream is still transmitting.
//
// Tables are resumable: Extend appends arrivals to an already-solved table
// and fills only the cells whose interval touches the appended suffix, so
// an epoch replanner can absorb arrivals incrementally instead of re-running
// the whole DP (see Extend and SolveForest).  A Tables value is not safe for
// concurrent use.
type Tables struct {
	n      int
	model  Model
	window float64
	// times is the table's own copy of the covered arrival times (Extend
	// appends to it; callers keep ownership of the slices they pass in).
	times []float64
	// limit[i] is the largest j such that (i, j) is stored.
	limit []int32
	// off[i] is the flat index of cell (i, i); off[n] is the cell count.
	off   []int64
	mc    []float64
	split []int32

	// Resumable forest-partition state (SolveForest): best[j] is the optimal
	// cost of serving arrivals 0..j-1 with full streams of length solvedL,
	// choice[j] the start of its last group, valid for j <= solved.  The
	// prefix DP only ever reads earlier prefixes, so Extend keeps it valid.
	best    []float64
	choice  []int32
	solved  int
	solvedL float64
}

// N returns the number of arrivals the tables cover.
func (t *Tables) N() int { return t.n }

// Limit returns the largest j for which (i, j) is stored.
func (t *Tables) Limit(i int) int { return int(t.limit[i]) }

// InBand reports whether the interval [i, j] is stored.
func (t *Tables) InBand(i, j int) bool {
	return 0 <= i && i <= j && j < t.n && j <= int(t.limit[i])
}

// MC returns the optimal merge cost of a single tree over the arrivals
// i..j (rooted at i).  The interval must be in band.
func (t *Tables) MC(i, j int) float64 { return t.mc[t.off[i]+int64(j-i)] }

// Split returns the last merge h chosen for the interval [i, j] (0 when
// i == j).  The interval must be in band.
func (t *Tables) Split(i, j int) int { return int(t.split[t.off[i]+int64(j-i)]) }

// Cells returns the number of stored DP cells.
func (t *Tables) Cells() int64 { return int64(len(t.mc)) }

// MemoryBytes returns the size of the flat backing arrays in bytes
// (cellBytes per cell: a float64 cost and an int32 split).  Extended tables
// reserve up to 50% capacity headroom beyond this so follow-up extends can
// grow in place.
func (t *Tables) MemoryBytes() int64 { return t.Cells() * cellBytes }

// cellBytes is the storage cost of one DP cell: a float64 cost plus an
// int32 split.
const cellBytes = 12

// forEachBandLimit calls fn(i, lim) for every row i, where lim is the
// largest j such that the interval [i, j] is inside the window (<= 0 or
// +Inf means unbanded).  It is the single definition of the band used by
// both ComputeTables and the pre-allocation estimates, so the memory guard
// in policy.OfflineOptimal can never drift from what ComputeTables
// actually allocates.
func forEachBandLimit(times []float64, window float64, fn func(i, lim int)) {
	n := len(times)
	if window <= 0 || math.IsInf(window, 1) {
		for i := 0; i < n; i++ {
			fn(i, n-1)
		}
		return
	}
	j := 0
	for i := 0; i < n; i++ {
		if j < i {
			j = i
		}
		for j+1 < n && times[j+1]-times[i] < window {
			j++
		}
		fn(i, j)
	}
}

// BandCells returns, in O(n) time and O(1) space, the number of DP cells
// ComputeTables will allocate for the given window (<= 0 means unbanded).
func BandCells(times []float64, window float64) int64 {
	var cells int64
	forEachBandLimit(times, window, func(i, lim int) {
		cells += int64(lim-i) + 1
	})
	return cells
}

// BandBytes returns the size in bytes of the flat DP tables ComputeTables
// would allocate for the given window, in O(n) time.  Callers can use it to
// bound memory before committing to the computation.
func BandBytes(times []float64, window float64) int64 {
	return BandCells(times, window) * cellBytes
}

// ComputeTables runs the split-monotonicity (Knuth-accelerated) interval DP
// of MergeCostTableFast into flat banded storage, sharding each diagonal of
// the DP across a persistent pool of `workers` goroutines (0 means
// GOMAXPROCS).  All cells of one diagonal depend only on strictly shorter
// intervals, so a diagonal is embarrassingly parallel; each cell is computed
// by exactly the same float operations in the same order as the serial
// algorithm, so the resulting mc and split tables are bit-identical to
// MergeCostTableFast for every in-band cell regardless of worker count.
//
// The DP can run for seconds at large n, so it honors ctx: cancellation is
// observed within one work unit (one row of the serial driver, one diagonal
// chunk of the parallel one), every pool goroutine is joined before the
// call returns, and the error wraps ctx.Err() so callers can test it with
// errors.Is(err, context.Canceled).
func ComputeTables(ctx context.Context, times []float64, model Model, window float64, workers int) (*Tables, error) {
	if err := validateTimes(times); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled(err)
	}
	t := &Tables{model: model, window: window}
	if len(times) == 0 {
		return t, nil
	}
	if err := t.grow(ctx, times, workers); err != nil {
		return nil, err
	}
	return t, nil
}

// Extend appends newTimes to the table's arrivals and fills only the cells
// whose interval touches the appended suffix, reusing every previously
// computed cell.  The result is bit-identical, cell for cell, to a cold
// ComputeTables run over the concatenated arrivals: old cells are never
// recomputed (a cell (i, j) depends only on times[i..j]), and new cells run
// the same fillRange float operations in a dependency-respecting order.
// newTimes must be strictly increasing and start after the table's last
// arrival.
//
// On error — cancellation included — the table may be partially updated and
// must be discarded; on success it is ready for further Extend calls.
func (t *Tables) Extend(ctx context.Context, newTimes []float64, workers int) error {
	if len(newTimes) == 0 {
		return nil
	}
	if err := validateTimes(newTimes); err != nil {
		return err
	}
	if t.n > 0 && newTimes[0] <= t.times[t.n-1] {
		return fmt.Errorf("%w: offline: Extend arrivals must continue the table (%g after %g)",
			moderr.ErrBadInstance, newTimes[0], t.times[t.n-1])
	}
	if err := ctx.Err(); err != nil {
		return canceled(err)
	}
	return t.grow(ctx, newTimes, workers)
}

// Clone returns a deep copy of the table sharing no storage with t, so a
// benchmark or test can Extend the copy while keeping the original intact.
// Capacity headroom is preserved, so a clone extends in place exactly like
// its original would.
func (t *Tables) Clone() *Tables {
	c := *t
	c.times = cloneCap(t.times)
	c.limit = cloneCap(t.limit)
	c.off = cloneCap(t.off)
	c.mc = cloneCap(t.mc)
	c.split = cloneCap(t.split)
	c.best = cloneCap(t.best)
	c.choice = cloneCap(t.choice)
	return &c
}

// cloneCap copies a slice preserving both length and capacity.
func cloneCap[E any](s []E) []E {
	if s == nil {
		return nil
	}
	out := make([]E, len(s), cap(s))
	copy(out, s)
	return out
}

// growCap returns the allocation size for need cells: exact for a cold
// build (headroom false), 1.5x for an extend so the next few extends can
// slide rows in place instead of reallocating.
func growCap(need int64, headroom bool) int64 {
	if !headroom {
		return need
	}
	return need + need/2
}

// grow appends newTimes (already validated as continuing t.times) and fills
// the new in-band cells.  It is the single driver behind both ComputeTables
// (growing an empty table) and Extend (growing a solved one), which is what
// makes warm and cold results bit-identical by construction.
func (t *Tables) grow(ctx context.Context, newTimes []float64, workers int) error {
	m := t.n
	n := m + len(newTimes)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t.times = append(t.times, newTimes...)
	times := t.times

	// Re-derive the band limits.  Rows whose band does not reach the suffix
	// keep their limit — a row's limit for j < m depends only on the old
	// times — so the rows whose cells must move form a tail [firstChanged, m)
	// (band contiguity: a row can only grow into the suffix if it already
	// reached the previous last arrival).
	firstChanged := m
	limit := t.limit
	if cap(limit) < n {
		nl := make([]int32, m, growCap(int64(n), m > 0))
		copy(nl, limit)
		limit = nl
	}
	limit = limit[:n]
	forEachBandLimit(times, t.window, func(i, lim int) {
		if i < m && firstChanged == m && int32(lim) != limit[i] {
			firstChanged = i
		}
		limit[i] = int32(lim)
	})
	t.limit = limit

	// Save the displaced rows' old offsets before re-deriving the offsets;
	// offsets of rows before firstChanged are unchanged.
	var oldOff []int64
	if firstChanged < m {
		oldOff = append(oldOff, t.off[firstChanged:m+1]...)
	}
	off := t.off
	if off == nil {
		off = make([]int64, 1, n+1)
	}
	if cap(off) < n+1 {
		no := make([]int64, len(off), growCap(int64(n+1), m > 0))
		copy(no, off)
		off = no
	}
	off = off[:n+1]
	for i := firstChanged; i < n; i++ {
		off[i+1] = off[i] + int64(limit[i]) - int64(i) + 1
	}
	t.off = off
	newCells := off[n]

	if m > 0 && int64(cap(t.mc)) >= newCells && int64(cap(t.split)) >= newCells {
		// In place: slide the displaced rows right, highest row first so a
		// destination never overwrites a pending source, and zero the gap
		// cells each displaced row gained.  Cells past the old length were
		// never written (lengths only grow), so they are still zero.
		mc := t.mc[:newCells]
		split := t.split[:newCells]
		for i := m - 1; i >= firstChanged; i-- {
			w := int(oldOff[i-firstChanged+1] - oldOff[i-firstChanged])
			src, dst := int(oldOff[i-firstChanged]), int(off[i])
			if src != dst {
				copy(mc[dst:dst+w], mc[src:src+w])
				copy(split[dst:dst+w], split[src:src+w])
			}
			for k := dst + w; k < int(off[i+1]); k++ {
				mc[k] = 0
				split[k] = 0
			}
		}
		t.mc, t.split = mc, split
	} else {
		// Fresh storage: one bulk copy moves the unchanged prefix, then the
		// displaced tail rows land at their new offsets.  Extends reserve
		// headroom so the next ones take the in-place path above.
		hc := growCap(newCells, m > 0)
		mc := make([]float64, newCells, hc)
		split := make([]int32, newCells, hc)
		if p := off[firstChanged]; p > 0 {
			copy(mc[:p], t.mc[:p])
			copy(split[:p], t.split[:p])
		}
		for i := firstChanged; i < m; i++ {
			w := int(oldOff[i-firstChanged+1] - oldOff[i-firstChanged])
			src, dst := int(oldOff[i-firstChanged]), int(off[i])
			copy(mc[dst:dst+w], t.mc[src:src+w])
			copy(split[dst:dst+w], t.split[src:src+w])
		}
		t.mc, t.split = mc, split
	}
	t.n = n

	// Seed the new length-2 cells (split[i][i+1] = i+1, like the serial
	// code); seeds wholly inside the old table are already final.
	i0 := 0
	if m > 0 {
		i0 = m - 1
	}
	for i := i0; i+1 < n; i++ {
		if int(limit[i]) >= i+1 {
			idx := off[i] + 1
			t.mc[idx] = edgeCost(times, i, i+1, i+1, t.model)
			t.split[idx] = int32(i + 1)
		}
	}

	// The two drivers below fill the same cells with the same per-cell code
	// (fillRange), so their outputs are identical; they differ only in
	// iteration order.  Serially, row-major order (rows from the bottom up)
	// keeps reads and writes of the current and next row cache-resident —
	// measurably faster than the diagonal order of the [][] reference.  With
	// workers, cells of one diagonal are independent, so each diagonal is
	// sharded across a persistent pool.  Rows before firstChanged have no
	// new cells (their band never reaches the suffix) and are skipped.
	if workers <= 1 || n-2 < minParallelRows {
		for i := n - 2; i >= firstChanged; i-- {
			// One row is the serial work unit: cancellation is observed
			// between rows, never mid-row.
			if err := ctx.Err(); err != nil {
				return canceled(err)
			}
			jLo := i + 2
			if jLo < m {
				jLo = m
			}
			if lim := int(limit[i]); lim >= jLo {
				t.fillRange(times, i, jLo, lim)
			}
		}
		return nil
	}

	type job struct{ length, lo, hi int }
	jobs := make(chan job, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func() {
			for jb := range jobs {
				// A dispatched chunk is the parallel work unit; after a
				// cancel the pool drains the queue without computing.
				if ctx.Err() == nil {
					t.computeDiagonal(times, jb.length, jb.lo, jb.hi)
				}
				wg.Done()
			}
		}()
	}
	defer close(jobs)

	for length := 3; length <= n; length++ {
		// Only rows whose cell (i, i+length-1) can be new: the cell's end
		// must reach the suffix (i > m-length) and the row must have new
		// cells at all (i >= firstChanged).
		lo0 := m - length + 1
		if lo0 < firstChanged {
			lo0 = firstChanged
		}
		hi0 := n - length + 1
		rows := hi0 - lo0
		if rows <= 0 {
			continue
		}
		if rows < minParallelRows {
			if err := ctx.Err(); err != nil {
				wg.Wait()
				return canceled(err)
			}
			t.computeDiagonal(times, length, lo0, hi0)
			continue
		}
		chunk := (rows + workers - 1) / workers
		for lo := lo0; lo < hi0; lo += chunk {
			hi := lo + chunk
			if hi > hi0 {
				hi = hi0
			}
			wg.Add(1)
			select {
			case jobs <- job{length, lo, hi}:
			case <-ctx.Done():
				wg.Done() // the job was never dispatched
				wg.Wait()
				return canceled(ctx.Err())
			}
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return canceled(err)
		}
	}
	return nil
}

// canceled wraps a context error so every cancellation path out of the DP
// reports the same shape while staying errors.Is-compatible with
// context.Canceled / context.DeadlineExceeded.
func canceled(err error) error {
	return fmt.Errorf("offline: interval DP canceled: %w", err)
}

// minParallelRows is the diagonal size below which the sync overhead of
// fanning out exceeds the work; such diagonals run on the caller.
const minParallelRows = 512

// computeDiagonal fills the cells (i, i+length-1) for i in [lo, hi),
// skipping rows whose band is too narrow.
func (t *Tables) computeDiagonal(times []float64, length, lo, hi int) {
	for i := lo; i < hi; i++ {
		j := i + length - 1
		if j <= int(t.limit[i]) {
			t.fillRange(times, i, j, j)
		}
	}
}

// fillRange fills the cells (i, j) for j in [jLo, jHi] of row i, in
// increasing j.  Cells (i, i) .. (i, jLo-1) and the whole rows below i must
// already be final.  The float operations per cell match MergeCostTableFast
// exactly (same expressions, same order), so the output is bit-identical to
// the [][] reference no matter which driver calls this; only the indexing
// is flattened.
func (t *Tables) fillRange(times []float64, i, jLo, jHi int) {
	off, mc, split := t.off, t.mc, t.split
	offI := off[i]
	// rowI is mc shifted so rowI[h] = mc(i, h); rowSplitI likewise for the
	// split table, and rowI1/rowSplitI1 for row i+1.
	rowI := mc[offI-int64(i):]
	rowSplitI := split[offI-int64(i):]
	offI1 := off[i+1]
	rowI1Split := split[offI1-int64(i+1):]
	receiveAll := t.model == ReceiveAll
	ti := times[i]
	for j := jLo; j <= jHi; j++ {
		// Knuth bounds: only splits between the optima of [i, j-1] and
		// [i+1, j] need examining.
		sLo := int(rowSplitI[j-1])
		sHi := int(rowI1Split[j])
		if sLo < i+1 {
			sLo = i + 1
		}
		if sHi > j {
			sHi = j
		}
		if sHi < sLo {
			sHi = sLo
		}
		best := math.Inf(1)
		bestH := sLo
		if receiveAll {
			// edgeCost is times[j] - times[i], independent of h.
			e := times[j] - ti
			for h := sLo; h <= sHi; h++ {
				c := rowI[h-1] + mc[off[h]+int64(j-h)] + e
				if c < best {
					best, bestH = c, h
				}
			}
		} else {
			tj2 := 2 * times[j]
			for h := sLo; h <= sHi; h++ {
				c := rowI[h-1] + mc[off[h]+int64(j-h)] + (tj2 - times[h] - ti)
				if c < best {
					best, bestH = c, h
				}
			}
		}
		rowI[j] = best
		rowSplitI[j] = int32(bestH)
	}
}

// BuildTree reconstructs an optimal merge tree over the arrivals i..j from
// the split table.
func (t *Tables) BuildTree(times []float64, i, j int) *mergetree.RTree {
	if i == j {
		return mergetree.NewR(times[i])
	}
	h := t.Split(i, j)
	left := t.BuildTree(times, i, h-1)
	right := t.BuildTree(times, h, j)
	left.AddChild(right)
	return left
}
