package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mergetree"
	"repro/internal/online"
	"repro/internal/schedule"
)

// mustBuild builds the schedule for a forest or fails the test.
func mustBuild(t *testing.T, f *mergetree.Forest) *schedule.ForestSchedule {
	t.Helper()
	fs, err := schedule.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// assertEngineEquivalence runs both engines on the schedule and fails unless
// every Result field — aggregates and the full per-client slice — matches.
func assertEngineEquivalence(t *testing.T, name string, fs *schedule.ForestSchedule) {
	t.Helper()
	ref, refErr := RunScheduleReference(fs)
	for _, workers := range []int{0, 1, 3} {
		got, gotErr := RunScheduleWorkers(fs, workers)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: reference %v, indexed(workers=%d) %v", name, refErr, workers, gotErr)
		}
		if refErr != nil {
			return
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("%s (workers=%d): engines disagree\nreference: %+v\nindexed:   %+v", name, workers, ref, got)
		}
	}
}

// TestEngineEquivalenceFixtures replays every schedule shape the original
// engine tests cover — optimal off-line forests, on-line forests, receive-all
// schedules, buffered forests, and a deliberately corrupted schedule — and
// asserts the indexed engine reproduces the reference engine bit for bit.
func TestEngineEquivalenceFixtures(t *testing.T) {
	fig3 := mergetree.NewForest(15)
	tr, err := mergetree.Parse("0(1 2 3(4) 5(6 7))")
	if err != nil {
		t.Fatal(err)
	}
	fig3.Add(tr)
	assertEngineEquivalence(t, "fig3", mustBuild(t, fig3))

	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 14}, {4, 16}, {8, 40}, {50, 120}} {
		assertEngineEquivalence(t, "optimal", mustBuild(t, core.OptimalForest(c.L, c.n)))
	}
	assertEngineEquivalence(t, "online", mustBuild(t, online.NewServer(30).Forest(100)))
	assertEngineEquivalence(t, "buffered", mustBuild(t, core.OptimalForestBuffered(20, 4, 60)))

	all, err := schedule.BuildReceiveAll(core.OptimalForestAll(15, 14))
	if err != nil {
		t.Fatal(err)
	}
	assertEngineEquivalence(t, "receive-all", all)

	// Corrupted schedule: truncating stream 5 makes clients 6 and 7 stall.
	corrupted := mustBuild(t, fig3)
	s := corrupted.Streams[5]
	s.Length = 3
	corrupted.Streams[5] = s
	assertEngineEquivalence(t, "corrupted", corrupted)
	if res, err := RunSchedule(corrupted); err != nil || res.Stalls == 0 {
		t.Errorf("indexed engine must report stalls on the corrupted schedule (err %v)", err)
	}

	// A negative stream length never transmits; it must not perturb the
	// bandwidth accounting of the healthy streams.
	negative := mustBuild(t, fig3)
	s = negative.Streams[3]
	s.Length = -2
	negative.Streams[3] = s
	assertEngineEquivalence(t, "negative-length", negative)
}

// randomTree builds a random merge tree over the consecutive arrivals
// first..first+size-1; contiguous child blocks keep the preorder property.
func randomTree(rng *rand.Rand, first int64, size int) *mergetree.Tree {
	t := mergetree.New(first)
	rest := size - 1
	next := first + 1
	for rest > 0 {
		k := 1 + rng.Intn(rest)
		t.AddChild(randomTree(rng, next, k))
		next += int64(k)
		rest -= k
	}
	return t
}

// TestEngineEquivalenceRandomForests compares the engines on randomized
// forests — random tree shapes, random gaps between trees — both intact and
// with randomly corrupted stream lengths (so the stall-accounting paths are
// exercised too).
func TestEngineEquivalenceRandomForests(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		var L int64 = 10 + int64(rng.Intn(50))
		f := mergetree.NewForest(L)
		arrival := int64(rng.Intn(5))
		for trees := 1 + rng.Intn(3); trees > 0; trees-- {
			size := 1 + rng.Intn(int(L/2)+1)
			f.Add(randomTree(rng, arrival, size))
			arrival += int64(size + rng.Intn(4))
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: generated forest invalid: %v", trial, err)
		}
		fs := mustBuild(t, f)
		assertEngineEquivalence(t, "random", fs)

		// Corrupt a few stream lengths (shrink or grow) and compare again.
		for a, s := range fs.Streams {
			if rng.Intn(3) == 0 {
				s.Length += int64(rng.Intn(7)) - 3
				if s.Length < 0 {
					s.Length = 0
				}
				fs.Streams[a] = s
			}
		}
		assertEngineEquivalence(t, "random-corrupted", fs)
	}
}

// handProgram builds a single-stage program without BuildProgram's
// validation, for adversarial schedules.
func handProgram(client int64, recs ...schedule.Reception) *schedule.Program {
	from, to := int64(0), int64(0)
	for i, r := range recs {
		if i == 0 || r.StartSlot < from {
			from = r.StartSlot
		}
		if r.EndSlot() > to {
			to = r.EndSlot()
		}
	}
	return &schedule.Program{
		Client: client,
		Path:   []int64{client},
		L:      0, // unused by the engines
		Stages: []schedule.Stage{{From: from, To: to, Receptions: recs}},
	}
}

// TestWindowCoversEarlyClients is the regression test for the simulation
// window: a client arriving before the earliest stream must be simulated
// (and stall) from its arrival slot, not from the first stream start.
func TestWindowCoversEarlyClients(t *testing.T) {
	fs := &schedule.ForestSchedule{
		L:       5,
		Streams: map[int64]schedule.StreamSchedule{10: {Start: 10, Length: 5}},
		Programs: map[int64]*schedule.Program{
			7: handProgram(7, schedule.Reception{Stream: 7, StartSlot: 7, FirstPart: 1, LastPart: 5}),
		},
	}
	assertEngineEquivalence(t, "early-client", fs)
	res, err := RunSchedule(fs)
	if err != nil {
		t.Fatal(err)
	}
	// Window is [7, 15): slots 7..14, not [10, 15) as the buggy window gave.
	if res.Slots != 8 {
		t.Errorf("Slots = %d, want 8 (window must start at the client arrival, slot 7)", res.Slots)
	}
	// The client listens to a stream that does not exist, so it stalls in
	// every one of its 8 slots — including the 3 before the first stream.
	if res.Stalls != 8 {
		t.Errorf("Stalls = %d, want 8 (pre-stream slots must be counted)", res.Stalls)
	}
	if res.Clients[0].MaxConcurrent != 1 {
		t.Errorf("MaxConcurrent = %d, want 1 (listening counts even on a dead channel)", res.Clients[0].MaxConcurrent)
	}
}

// TestEngineEdgeCases pins down the degenerate schedules both engines must
// agree on: no clients, no streams, a single client, and a client arriving
// at the very last slot of the horizon.
func TestEngineEdgeCases(t *testing.T) {
	t.Run("no-clients", func(t *testing.T) {
		fs := &schedule.ForestSchedule{
			L:        10,
			Streams:  map[int64]schedule.StreamSchedule{0: {Start: 0, Length: 10, Root: true}},
			Programs: map[int64]*schedule.Program{},
		}
		assertEngineEquivalence(t, "no-clients", fs)
		res, err := RunSchedule(fs)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalBandwidth != 10 || res.PeakBandwidth != 1 || len(res.Clients) != 0 {
			t.Errorf("unexpected result: %+v", res)
		}
	})
	t.Run("no-streams", func(t *testing.T) {
		fs := &schedule.ForestSchedule{
			L:       4,
			Streams: map[int64]schedule.StreamSchedule{},
			Programs: map[int64]*schedule.Program{
				3: handProgram(3, schedule.Reception{Stream: 3, StartSlot: 3, FirstPart: 1, LastPart: 4}),
			},
		}
		assertEngineEquivalence(t, "no-streams", fs)
		res, err := RunSchedule(fs)
		if err != nil {
			t.Fatal(err)
		}
		// With nothing broadcast the client stalls over its whole lifetime.
		if res.Slots != 4 || res.Stalls != 4 || res.TotalBandwidth != 0 {
			t.Errorf("unexpected result: %+v", res)
		}
	})
	t.Run("single-client", func(t *testing.T) {
		f := mergetree.NewForest(12)
		f.Add(mergetree.New(5))
		fs := mustBuild(t, f)
		assertEngineEquivalence(t, "single-client", fs)
		res, err := RunSchedule(fs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stalls != 0 || res.Clients[0].FinishSlot != 17 || res.TotalBandwidth != 12 {
			t.Errorf("unexpected result: %+v", res)
		}
	})
	t.Run("client-at-last-slot", func(t *testing.T) {
		fs := mustBuild(t, core.OptimalForest(15, 8))
		// Keep only the last client; the broadcast plan is unchanged.
		var last int64
		for arr := range fs.Programs {
			if arr > last {
				last = arr
			}
		}
		fs.Programs = map[int64]*schedule.Program{last: fs.Programs[last]}
		assertEngineEquivalence(t, "client-at-last-slot", fs)
		res, err := RunSchedule(fs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stalls != 0 || len(res.Clients) != 1 || res.Clients[0].Arrival != last {
			t.Errorf("unexpected result: %+v", res)
		}
	})
}

// TestIndexedDeterministicAcrossWorkers checks that the worker count has no
// effect on the result, only on wall-clock time.
func TestIndexedDeterministicAcrossWorkers(t *testing.T) {
	fs := mustBuild(t, online.NewServer(25).Forest(300))
	base, err := RunScheduleWorkers(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16, 1000} {
		got, err := RunScheduleWorkers(fs, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d changes the result", w)
		}
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(200)
	if b.Has(0) || b.Has(200) {
		t.Fatal("new bitset must be empty")
	}
	if !b.Set(63) || !b.Set(64) || !b.Set(200) {
		t.Fatal("first Set must report a new element")
	}
	if b.Set(64) {
		t.Fatal("second Set of the same element must report false")
	}
	if !b.Has(63) || !b.Has(64) || !b.Has(200) || b.Has(65) {
		t.Fatal("membership after Set is wrong")
	}
	b.Reset()
	if b.Has(63) || b.Has(64) || b.Has(200) {
		t.Fatal("Reset must clear the set")
	}
}
