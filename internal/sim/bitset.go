package sim

// bitset is a fixed-size set of part numbers.  Parts are 1-based and
// contiguous per reception, which makes a packed bit vector both smaller and
// much faster than the map[int64]bool the reference engine uses: Set is a
// single word OR, and membership a single word AND.
type bitset struct {
	words []uint64
}

// newBitset returns a bitset able to hold values 0..n.
func newBitset(n int64) *bitset {
	return &bitset{words: make([]uint64, (n>>6)+1)}
}

// Set inserts v and reports whether it was newly inserted.
func (b *bitset) Set(v int64) bool {
	w, mask := v>>6, uint64(1)<<(uint(v)&63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	return true
}

// Has reports whether v is in the set.
func (b *bitset) Has(v int64) bool {
	return b.words[v>>6]&(uint64(1)<<(uint(v)&63)) != 0
}

// Reset clears the set for reuse.
func (b *bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}
