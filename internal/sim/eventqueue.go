package sim

import "container/heap"

// Event is a scheduled callback in the discrete-event engine.
type Event struct {
	// Time is the slot (or continuous time) at which the event fires.
	Time float64
	// Priority breaks ties: lower priorities fire first at equal times.
	Priority int
	// Action is invoked when the event fires.
	Action func()

	index int
}

// EventQueue is a min-heap of events ordered by time then priority.  The
// zero value is ready to use.
type EventQueue struct {
	h eventHeap
}

// Push schedules an event.
func (q *EventQueue) Push(e *Event) {
	heap.Push(&q.h, e)
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *EventQueue) Pop() *Event {
	if q.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int {
	return q.h.Len()
}

// Peek returns the earliest event without removing it, or nil if empty.
func (q *EventQueue) Peek() *Event {
	if q.h.Len() == 0 {
		return nil
	}
	return q.h[0]
}

// Run drains the queue, invoking every event's action in time order.
// Actions may push further events.
func (q *EventQueue) Run() {
	for q.Len() > 0 {
		e := q.Pop()
		if e.Action != nil {
			e.Action()
		}
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Priority < h[j].Priority
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x interface{}) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
