package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/schedule"
)

// RunSchedule executes a prebuilt forest schedule on the indexed, parallel
// engine with one worker per CPU.  It produces results identical field by
// field to RunScheduleReference, in a fraction of the work: server bandwidth
// comes from the stream intervals (prefix sums over a difference array of
// starts and ends), and each client is simulated only over its own lifetime
// against its own sorted reception intervals.
func RunSchedule(fs *schedule.ForestSchedule) (*Result, error) {
	return RunScheduleWorkers(fs, 0)
}

// RunScheduleWorkers is RunSchedule with an explicit worker count; workers
// <= 0 selects runtime.NumCPU().  The result does not depend on the worker
// count — clients are independent given the broadcast plan, so sharding only
// changes wall-clock time.
func RunScheduleWorkers(fs *schedule.ForestSchedule, workers int) (*Result, error) {
	if fs.L < 1 {
		return nil, fmt.Errorf("sim: invalid media length %d", fs.L)
	}
	firstSlot, lastSlot, empty := window(fs)
	if empty {
		return &Result{L: fs.L}, nil
	}
	res := &Result{L: fs.L, Slots: lastSlot - firstSlot}
	res.TotalBandwidth, res.PeakBandwidth = bandwidthIndex(fs)

	// Arrivals in deterministic (sorted) order; they are unique map keys, so
	// this fixes the Result.Clients order completely.
	arrs := make([]int64, 0, len(fs.Programs))
	for arr := range fs.Programs {
		arrs = append(arrs, arr)
	}
	sort.Slice(arrs, func(i, j int) bool { return arrs[i] < arrs[j] })
	if len(arrs) > 0 {
		res.Clients = make([]ClientStats, len(arrs))
	}

	// The bitset must hold every part number any stream can deliver; a
	// (corrupted) stream may carry parts beyond L.
	maxPart := fs.L
	for _, s := range fs.Streams {
		if s.Length > maxPart {
			maxPart = s.Length
		}
	}

	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(arrs) {
		workers = len(arrs)
	}
	if workers < 1 {
		workers = 1
	}
	// Shard clients into contiguous blocks, one goroutine per shard, and
	// merge the shard-local aggregates at the end.
	type shardStats struct {
		stalls    int
		maxBuffer int64
	}
	partial := make([]shardStats, workers)
	var wg sync.WaitGroup
	per := (len(arrs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(arrs) {
			hi = len(arrs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			bs := newBitset(maxPart + 1)
			for i := lo; i < hi; i++ {
				arr := arrs[i]
				st := simulateClient(arr, fs.Programs[arr], fs, lastSlot, bs)
				res.Clients[i] = st
				partial[w].stalls += st.Stalls
				if st.MaxBuffer > partial[w].maxBuffer {
					partial[w].maxBuffer = st.MaxBuffer
				}
				bs.Reset()
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range partial {
		res.Stalls += p.stalls
		if p.maxBuffer > res.MaxBuffer {
			res.MaxBuffer = p.maxBuffer
		}
	}
	return res, nil
}

// bandwidthIndex derives the total and peak server bandwidth directly from
// the stream intervals.  Every stream broadcasts one part per slot over the
// contiguous range [Start, Start+Length), and the simulation window always
// covers every stream in full, so the total is a sum of interval lengths and
// the peak is a sweep over the sorted interval endpoints — no per-slot scan.
// Streams with a non-positive (corrupted) length never transmit and are
// skipped, exactly as the reference engine's PartAt test skips them.
func bandwidthIndex(fs *schedule.ForestSchedule) (total int64, peak int) {
	type endpoint struct {
		slot  int64
		delta int
	}
	events := make([]endpoint, 0, 2*len(fs.Streams))
	for _, s := range fs.Streams {
		if s.Length <= 0 {
			continue
		}
		total += s.Length
		events = append(events, endpoint{s.Start, +1}, endpoint{s.End(), -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].slot != events[j].slot {
			return events[i].slot < events[j].slot
		}
		return events[i].delta < events[j].delta
	})
	cur := 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return total, peak
}

// span is a half-open slot interval during which a client listens to one
// reception (whether or not the stream actually carries the expected parts).
type span struct {
	start, end int64
}

// run is the validated portion of a reception: an aligned, in-range slot
// interval during which the expected part really arrives each slot (part
// firstPart at slot start, firstPart+1 at start+1, ...).
type run struct {
	start, end, firstPart int64
}

// clientIndex is the precomputed reception index of a single client.
type clientIndex struct {
	spans []span // all non-empty receptions, sorted by start
	runs  []run  // validated delivery runs, sorted by start
}

// buildClientIndex validates every reception of the program against the
// stream table once, instead of once per slot.  A stream broadcasts part j
// during slot Start+j-1, so a reception delivers its parts if and only if
// its slot/part offsets are aligned with the stream's (a single integer
// comparison); the delivered range is then the reception clipped to the
// stream's transmission interval.
func buildClientIndex(prog *schedule.Program, fs *schedule.ForestSchedule) clientIndex {
	var ix clientIndex
	for _, stg := range prog.Stages {
		for _, r := range stg.Receptions {
			if r.Slots() <= 0 {
				continue
			}
			ix.spans = append(ix.spans, span{r.StartSlot, r.EndSlot()})
			s, ok := fs.Streams[r.Stream]
			if !ok {
				continue
			}
			// Alignment: part r.FirstPart+(t-r.StartSlot) equals the
			// stream's part t-s.Start+1 for every t, or for none.
			if r.StartSlot-r.FirstPart != s.Start-1 {
				continue
			}
			lo, hi := r.StartSlot, r.EndSlot()
			if lo < s.Start {
				lo = s.Start
			}
			if hi > s.End() {
				hi = s.End()
			}
			if hi <= lo {
				continue
			}
			ix.runs = append(ix.runs, run{lo, hi, r.FirstPart + (lo - r.StartSlot)})
		}
	}
	sort.Slice(ix.spans, func(i, j int) bool { return ix.spans[i].start < ix.spans[j].start })
	sort.Slice(ix.runs, func(i, j int) bool { return ix.runs[i].start < ix.runs[j].start })
	return ix
}

// simulateClient replays one client's state machine over its own lifetime
// [arrival, finish), touching only the slots and receptions that concern it.
// The received-parts buffer is a bitset with the played prefix acting as a
// watermark (parts are contiguous per reception), and the listening count is
// maintained by pointers into the sorted span endpoints.  The slot semantics
// are exactly those of RunScheduleReference.
func simulateClient(arrival int64, prog *schedule.Program, fs *schedule.ForestSchedule, lastSlot int64, bs *bitset) ClientStats {
	ix := buildClientIndex(prog, fs)
	stats := ClientStats{Arrival: arrival}

	// Sorted span endpoints for the O(1) amortized listening count.
	ends := make([]int64, len(ix.spans))
	for i, sp := range ix.spans {
		ends[i] = sp.end
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })

	var (
		played     int64
		received   int64 // distinct parts in hand (buffered or played)
		spanPtr    int   // spans with start <= slot
		endPtr     int   // spans with end <= slot
		runPtr     int   // runs admitted to the active list
		active     []run
		receivedMx int64
	)
	for slot := arrival; slot < lastSlot; slot++ {
		// 1. Listening count: spans that cover this slot.
		for spanPtr < len(ix.spans) && ix.spans[spanPtr].start <= slot {
			spanPtr++
		}
		for endPtr < len(ends) && ends[endPtr] <= slot {
			endPtr++
		}
		if listening := spanPtr - endPtr; listening > stats.MaxConcurrent {
			stats.MaxConcurrent = listening
		}
		// 2. Deliveries: every active validated run hands over one part.
		for runPtr < len(ix.runs) && ix.runs[runPtr].start <= slot {
			active = append(active, ix.runs[runPtr])
			runPtr++
		}
		live := active[:0]
		for _, r := range active {
			if r.end <= slot {
				continue
			}
			live = append(live, r)
			if bs.Set(r.firstPart + (slot - r.start)) {
				received++
			}
		}
		active = live
		// 3. Playback of the next part, or a stall.
		if bs.Has(played + 1) {
			played++
		} else {
			stats.Stalls++
		}
		if buffered := received - played; buffered > receivedMx {
			receivedMx = buffered
		}
		if played == fs.L {
			stats.FinishSlot = slot + 1
			break
		}
	}
	stats.MaxBuffer = receivedMx
	return stats
}
