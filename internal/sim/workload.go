package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/arrivals"
	"repro/internal/bandwidth"
	"repro/internal/multiobject"
	"repro/internal/online"
	"repro/internal/schedule"
)

// WorkloadConfig describes a multi-object simulation: a catalog of media
// objects served by one delay-guaranteed server, with an arrival mix split
// across the objects proportionally to their popularities.
type WorkloadConfig struct {
	// Catalog is the set of media objects (lengths, popularities, per-object
	// guaranteed delays).
	Catalog multiobject.Catalog
	// Horizon is the simulated time span in the catalog's time units.
	Horizon float64
	// MeanInterArrival is the aggregate mean inter-arrival time across the
	// whole catalog, in time units; object i receives a share of the request
	// stream proportional to its popularity.
	MeanInterArrival float64
	// Poisson selects Poisson arrivals; otherwise each object sees
	// constant-rate arrivals at its share of the aggregate rate.
	Poisson bool
	// Seed seeds the Poisson generators (object i uses Seed+i).
	Seed int64
	// Workers is the per-object engine worker count (<= 0: all CPUs).
	Workers int
}

// ObjectResult is the simulated outcome for one media object.
type ObjectResult struct {
	// Object echoes the catalog entry.
	Object multiobject.Object
	// SlotsPerMedia is L for this object (its length in delay slots).
	SlotsPerMedia int64
	// Arrivals is the number of raw requests for this object.
	Arrivals int
	// Clients is the number of simulated (batched) clients: slots with at
	// least one arrival, each served as one imaginary client at the slot
	// boundary per the delay-guaranteed model.
	Clients int
	// Sim is the indexed engine's result for this object's schedule.
	Sim *Result
	// StreamCount is the number of streams the broadcast plan starts for
	// this object (one per slot of the widened horizon).
	StreamCount int
	// Streams is the measured total bandwidth in complete copies of the
	// object.
	Streams float64
}

// WorkloadResult aggregates a multi-object run.
type WorkloadResult struct {
	// Horizon is the simulated time span in time units.
	Horizon float64
	// Objects holds per-object results in catalog order.
	Objects []ObjectResult
	// TotalBusyTime is the aggregate channel time used, in time units.
	TotalBusyTime float64
	// Peak is the server-wide peak number of simultaneously busy channels
	// across all objects, in real time.
	Peak int
	// Stalls is the total number of playback interruptions over all objects;
	// it must be 0.
	Stalls int
}

// AverageChannels returns the time-average number of busy channels.
func (r *WorkloadResult) AverageChannels() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return r.TotalBusyTime / r.Horizon
}

// RunWorkload simulates every object of the catalog on the indexed engine
// and merges the per-object channel usage into a server-wide real-time
// profile.  Each object runs the on-line delay-guaranteed algorithm for its
// own delay: the server obliviously starts a (possibly truncated) stream at
// the end of every slot, and the requests that arrived during a slot are
// served as one imaginary batched client.  Slots with no arrivals simply
// have no client to simulate — the broadcast plan, and therefore the
// bandwidth, is that of the on-line algorithm either way, which is what
// makes the delay-guaranteed server's cost workload-oblivious (Section 4.2).
//
// Large catalogs can take seconds, so RunWorkload honors ctx: cancellation
// is observed between objects (one object's simulation is the work unit)
// and the error wraps ctx.Err().
func RunWorkload(ctx context.Context, cfg WorkloadConfig) (*WorkloadResult, error) {
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Catalog) == 0 {
		return nil, fmt.Errorf("sim: workload catalog is empty")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: workload horizon must be positive, got %g", cfg.Horizon)
	}
	if cfg.MeanInterArrival <= 0 {
		return nil, fmt.Errorf("sim: workload mean inter-arrival must be positive, got %g", cfg.MeanInterArrival)
	}
	var popTotal float64
	for _, o := range cfg.Catalog {
		popTotal += o.Popularity
	}
	usage := bandwidth.New()
	out := &WorkloadResult{Horizon: cfg.Horizon}
	for i, o := range cfg.Catalog {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: workload canceled: %w", err)
		}
		// Object i's share of the aggregate request rate.
		share := 1 / float64(len(cfg.Catalog))
		if popTotal > 0 {
			share = o.Popularity / popTotal
		}
		var tr arrivals.Trace
		if share > 0 {
			mean := cfg.MeanInterArrival / share
			if cfg.Poisson {
				tr = arrivals.Poisson(mean, cfg.Horizon, cfg.Seed+int64(i))
			} else {
				tr = arrivals.Constant(mean, cfg.Horizon)
			}
		}
		obj, err := runWorkloadObject(o, tr, cfg.Horizon, cfg.Workers, usage)
		if err != nil {
			return nil, fmt.Errorf("sim: object %q: %w", o.Name, err)
		}
		out.Objects = append(out.Objects, obj)
		out.Stalls += obj.Sim.Stalls
	}
	out.TotalBusyTime = usage.Total()
	out.Peak = usage.Peak()
	return out, nil
}

// runWorkloadObject simulates a single object: it builds the on-line
// delay-guaranteed broadcast plan for the object's horizon, keeps receiving
// programs only for the slots in which at least one request arrived, runs
// the indexed engine, and adds the object's channel usage (scaled back to
// real time) to the server-wide profile.
func runWorkloadObject(o multiobject.Object, tr arrivals.Trace, horizon float64, workers int, usage *bandwidth.Usage) (ObjectResult, error) {
	L := o.Slots()
	// Batch the raw requests into delay slots; each occupied slot is one
	// imaginary client, served from the slot boundary with zero start delay.
	// The horizon in slots matches the analytic plan (multiobject.Build),
	// widened only if floating-point batching lands an arrival beyond it.
	occupied := tr.BatchToSlots(o.Delay)
	n := int64(math.Ceil(horizon / o.Delay))
	if n < 1 {
		n = 1
	}
	for _, slot := range occupied {
		if slot >= n {
			n = slot + 1
		}
	}
	forest := online.NewServer(L).Forest(n)
	// The broadcast plan is independent of the arrivals, so programs are
	// built only for the occupied slots — sparse traces skip nearly all of
	// the program-construction work.
	fs, err := schedule.BuildClients(forest, occupied)
	if err != nil {
		return ObjectResult{}, err
	}
	res, err := RunScheduleWorkers(fs, workers)
	if err != nil {
		return ObjectResult{}, err
	}
	// Feed the server-wide profile in sorted stream order so the float
	// accumulation (and therefore the reported busy time) is deterministic.
	starts := make([]int64, 0, len(fs.Streams))
	for a := range fs.Streams {
		starts = append(starts, a)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, a := range starts {
		s := fs.Streams[a]
		usage.AddLength(float64(s.Start)*o.Delay, float64(s.Length)*o.Delay)
	}
	return ObjectResult{
		Object:        o,
		SlotsPerMedia: L,
		Arrivals:      len(tr),
		Clients:       len(fs.Programs),
		Sim:           res,
		StreamCount:   len(fs.Streams),
		Streams:       float64(res.TotalBandwidth) / float64(L),
	}, nil
}
