// Package sim is a slot-accurate simulator of a Media-on-Demand delivery
// system with stream merging: a server multicasting (possibly truncated)
// streams on channels, and clients that follow their receiving programs,
// listen to at most two channels at a time, buffer parts ahead of playback,
// and play the media without interruption starting one guaranteed start-up
// delay after their arrival.
//
// The simulator executes a merge forest produced by any of the algorithms in
// this repository (optimal off-line, on-line delay-guaranteed, hand-built)
// and reports bandwidth usage, buffer occupancy, and any playback
// violations.  It is the evaluation substrate for the experiments of
// Section 4.2.
//
// Two engines implement the same slot semantics:
//
//   - RunSchedule is the indexed, parallel production engine.  Server
//     bandwidth is derived from the stream intervals by prefix sums (streams
//     broadcast contiguous slot ranges, so no per-slot scan over channels is
//     needed), and every client is simulated only over its own
//     [arrival, finish) window against its own sorted reception intervals,
//     with a bitset + watermark buffer instead of a hash set.  Clients are
//     independent given the broadcast plan, so they are sharded across
//     runtime.NumCPU() goroutines and the per-shard statistics are merged at
//     the end.  Total work is O(S + W + sum of per-client windows) for S
//     streams and a W-slot horizon, versus O(W x clients x streams) for the
//     naive engine, and the result is bit-identical and deterministic for
//     any worker count.
//
//   - RunScheduleReference is the original slot-by-slot engine, kept as an
//     executable specification: every slot scans every channel and every
//     client.  The equivalence tests assert both engines agree field by
//     field on valid, corrupted, and randomized schedules.
//
// RunWorkload layers a multi-object driver on top: a catalog of media
// objects (internal/multiobject) with Poisson or constant-rate arrival
// mixes (internal/arrivals) is simulated object by object on the indexed
// engine and the per-object results are combined into a server-wide,
// real-time bandwidth profile.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/mergetree"
	"repro/internal/schedule"
)

// ClientStats summarizes one client's simulated experience.
type ClientStats struct {
	// Arrival is the client's arrival slot (playback starts at that slot).
	Arrival int64
	// StartDelay is the number of slots between arrival and the start of
	// playback; in the delay-guaranteed model it is always 0 because the
	// imaginary batched client starts playing at the slot boundary.
	StartDelay int64
	// FinishSlot is the slot after the client has played the last part.
	FinishSlot int64
	// MaxBuffer is the largest number of parts buffered at once.
	MaxBuffer int64
	// MaxConcurrent is the largest number of streams listened to in one slot.
	MaxConcurrent int
	// Stalls counts slots in which the part to be played had not yet been
	// received (playback interruption); it must be 0 for a correct schedule.
	Stalls int
}

// Result aggregates a simulation run.
type Result struct {
	// L is the media length in slots.
	L int64
	// Clients holds per-client statistics ordered by arrival.
	Clients []ClientStats
	// TotalBandwidth is the total number of (channel, slot) transmissions.
	TotalBandwidth int64
	// PeakBandwidth is the maximum number of channels transmitting in any
	// single slot.
	PeakBandwidth int
	// Slots is the number of slots simulated.
	Slots int64
	// MaxBuffer is the maximum buffer occupancy over all clients.
	MaxBuffer int64
	// Stalls is the total number of playback interruptions; 0 means every
	// client enjoyed uninterrupted playback.
	Stalls int
}

// NormalizedBandwidth returns the total bandwidth in complete media streams.
func (r *Result) NormalizedBandwidth() float64 {
	return float64(r.TotalBandwidth) / float64(r.L)
}

// AverageBandwidth returns the average number of busy channels per slot.
func (r *Result) AverageBandwidth() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.TotalBandwidth) / float64(r.Slots)
}

// window computes the simulated slot range [first, last) of a schedule: the
// span of all stream transmissions and of all client lifetimes.  Client
// arrivals participate on both ends — a client arriving before the earliest
// stream must still be simulated (and stall) from its arrival slot, and a
// client always occupies at least the L slots of its playback.  empty
// reports whether the schedule has neither streams nor clients.
func window(fs *schedule.ForestSchedule) (first, last int64, empty bool) {
	empty = true
	for _, s := range fs.Streams {
		if empty || s.Start < first {
			first = s.Start
		}
		if empty || s.End() > last {
			last = s.End()
		}
		empty = false
	}
	for arr := range fs.Programs {
		if empty || arr < first {
			first = arr
		}
		if empty || arr+fs.L > last {
			last = arr + fs.L
		}
		empty = false
	}
	return first, last, empty
}

// RunForest executes the merge forest in the receive-two model on the
// indexed engine and returns the aggregate result.  The forest must be
// valid; playback violations are reported in the result (Stalls) rather
// than as errors so that deliberately corrupted schedules can be studied.
func RunForest(f *mergetree.Forest) (*Result, error) {
	fs, err := schedule.Build(f)
	if err != nil {
		return nil, err
	}
	return RunSchedule(fs)
}

// RunScheduleReference executes a prebuilt forest schedule slot by slot:
// every slot scans every channel and every client.  It is the executable
// specification the indexed engine (RunSchedule) is tested against; prefer
// RunSchedule everywhere else.
func RunScheduleReference(fs *schedule.ForestSchedule) (*Result, error) {
	if fs.L < 1 {
		return nil, fmt.Errorf("sim: invalid media length %d", fs.L)
	}
	firstSlot, lastSlot, empty := window(fs)
	if empty {
		return &Result{L: fs.L}, nil
	}
	// Instantiate channels.
	streams := make(map[int64]*stream, len(fs.Streams))
	for a, s := range fs.Streams {
		streams[a] = &stream{sched: s}
	}
	// Instantiate clients.
	clients := make([]*client, 0, len(fs.Programs))
	for arr, prog := range fs.Programs {
		clients = append(clients, &client{
			arrival:  arr,
			program:  prog,
			received: make(map[int64]bool, fs.L),
			stats:    ClientStats{Arrival: arr},
		})
	}
	sortClients(clients)

	res := &Result{L: fs.L}
	// Slot-by-slot execution.
	for slot := firstSlot; slot < lastSlot; slot++ {
		// 1. Server transmits on every active channel.
		busy := 0
		for _, st := range streams {
			if st.sched.PartAt(slot) > 0 {
				busy++
			}
		}
		res.TotalBandwidth += int64(busy)
		if busy > res.PeakBandwidth {
			res.PeakBandwidth = busy
		}
		// 2. Clients tune to the channels their program dictates and store
		// the received parts in their buffers.
		for _, c := range clients {
			if slot < c.arrival || c.played >= fs.L {
				continue
			}
			listening := 0
			for _, stg := range c.program.Stages {
				for _, r := range stg.Receptions {
					if slot < r.StartSlot || slot >= r.EndSlot() {
						continue
					}
					listening++
					part := r.FirstPart + (slot - r.StartSlot)
					st, ok := streams[r.Stream]
					if !ok || st.sched.PartAt(slot) != part {
						// The channel is not carrying the expected part;
						// the client receives nothing from it this slot.
						continue
					}
					c.received[part] = true
				}
			}
			if listening > c.stats.MaxConcurrent {
				c.stats.MaxConcurrent = listening
			}
			// 3. The client plays the next part (playback starts at the
			// arrival slot).
			next := c.played + 1
			if c.received[next] {
				c.played++
			} else {
				c.stats.Stalls++
				res.Stalls++
			}
			if buffered := int64(len(c.received)) - c.played; buffered > c.stats.MaxBuffer {
				c.stats.MaxBuffer = buffered
			}
			if c.played == fs.L && c.stats.FinishSlot == 0 {
				c.stats.FinishSlot = slot + 1
			}
		}
	}
	for _, c := range clients {
		if c.stats.MaxBuffer > res.MaxBuffer {
			res.MaxBuffer = c.stats.MaxBuffer
		}
		res.Clients = append(res.Clients, c.stats)
	}
	res.Slots = lastSlot - firstSlot
	return res, nil
}

// client is the reference engine's client state machine.
type client struct {
	arrival  int64
	program  *schedule.Program
	received map[int64]bool // parts in hand (buffered or already played)
	played   int64          // number of parts played so far
	stats    ClientStats
}

// stream is the reference engine's multicast channel state.
type stream struct {
	sched schedule.StreamSchedule
}

// sortClients orders clients by arrival.  Arrivals are unique (they are the
// keys of ForestSchedule.Programs), so the order — and therefore
// Result.Clients — is fully deterministic regardless of map iteration order.
func sortClients(cs []*client) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].arrival < cs[j].arrival })
}
