package sim

import (
	"fmt"

	"repro/internal/mergetree"
	"repro/internal/schedule"
)

// ClientStats summarizes one client's simulated experience.
type ClientStats struct {
	// Arrival is the client's arrival slot (playback starts at that slot).
	Arrival int64
	// StartDelay is the number of slots between arrival and the start of
	// playback; in the delay-guaranteed model it is always 0 because the
	// imaginary batched client starts playing at the slot boundary.
	StartDelay int64
	// FinishSlot is the slot after the client has played the last part.
	FinishSlot int64
	// MaxBuffer is the largest number of parts buffered at once.
	MaxBuffer int64
	// MaxConcurrent is the largest number of streams listened to in one slot.
	MaxConcurrent int
	// Stalls counts slots in which the part to be played had not yet been
	// received (playback interruption); it must be 0 for a correct schedule.
	Stalls int
}

// Result aggregates a simulation run.
type Result struct {
	// L is the media length in slots.
	L int64
	// Clients holds per-client statistics ordered by arrival.
	Clients []ClientStats
	// TotalBandwidth is the total number of (channel, slot) transmissions.
	TotalBandwidth int64
	// PeakBandwidth is the maximum number of channels transmitting in any
	// single slot.
	PeakBandwidth int
	// Slots is the number of slots simulated.
	Slots int64
	// MaxBuffer is the maximum buffer occupancy over all clients.
	MaxBuffer int64
	// Stalls is the total number of playback interruptions; 0 means every
	// client enjoyed uninterrupted playback.
	Stalls int
}

// NormalizedBandwidth returns the total bandwidth in complete media streams.
func (r *Result) NormalizedBandwidth() float64 {
	return float64(r.TotalBandwidth) / float64(r.L)
}

// AverageBandwidth returns the average number of busy channels per slot.
func (r *Result) AverageBandwidth() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.TotalBandwidth) / float64(r.Slots)
}

// client is the simulated client state machine.
type client struct {
	arrival  int64
	program  *schedule.Program
	received map[int64]bool // parts in hand (buffered or already played)
	played   int64          // number of parts played so far
	stats    ClientStats
}

// stream is the simulated multicast channel state.
type stream struct {
	sched schedule.StreamSchedule
}

// RunForest executes the merge forest slot by slot in the receive-two model
// and returns the aggregate result.  The forest must be valid; playback
// violations are reported in the result (Stalls) rather than as errors so
// that deliberately corrupted schedules can be studied.
func RunForest(f *mergetree.Forest) (*Result, error) {
	fs, err := schedule.Build(f)
	if err != nil {
		return nil, err
	}
	return RunSchedule(fs)
}

// RunSchedule executes a prebuilt forest schedule.
func RunSchedule(fs *schedule.ForestSchedule) (*Result, error) {
	if fs.L < 1 {
		return nil, fmt.Errorf("sim: invalid media length %d", fs.L)
	}
	// Instantiate channels.
	var firstSlot, lastSlot int64
	first := true
	streams := make(map[int64]*stream, len(fs.Streams))
	for a, s := range fs.Streams {
		streams[a] = &stream{sched: s}
		if first || s.Start < firstSlot {
			firstSlot = s.Start
		}
		if first || s.End() > lastSlot {
			lastSlot = s.End()
		}
		first = false
	}
	// Instantiate clients.
	clients := make([]*client, 0, len(fs.Programs))
	for arr, prog := range fs.Programs {
		c := &client{
			arrival:  arr,
			program:  prog,
			received: make(map[int64]bool, fs.L),
			stats:    ClientStats{Arrival: arr},
		}
		clients = append(clients, c)
		if arr+fs.L > lastSlot {
			lastSlot = arr + fs.L
		}
	}
	sortClients(clients)
	if first && len(clients) == 0 {
		return &Result{L: fs.L}, nil
	}

	res := &Result{L: fs.L}
	// Slot-by-slot execution.
	for slot := firstSlot; slot < lastSlot; slot++ {
		// 1. Server transmits on every active channel.
		busy := 0
		for _, st := range streams {
			if st.sched.PartAt(slot) > 0 {
				busy++
			}
		}
		res.TotalBandwidth += int64(busy)
		if busy > res.PeakBandwidth {
			res.PeakBandwidth = busy
		}
		// 2. Clients tune to the channels their program dictates and store
		// the received parts in their buffers.
		for _, c := range clients {
			if slot < c.arrival || c.played >= fs.L {
				continue
			}
			listening := 0
			for _, stg := range c.program.Stages {
				for _, r := range stg.Receptions {
					if slot < r.StartSlot || slot >= r.EndSlot() {
						continue
					}
					listening++
					part := r.FirstPart + (slot - r.StartSlot)
					st, ok := streams[r.Stream]
					if !ok || st.sched.PartAt(slot) != part {
						// The channel is not carrying the expected part;
						// the client receives nothing from it this slot.
						continue
					}
					c.received[part] = true
				}
			}
			if listening > c.stats.MaxConcurrent {
				c.stats.MaxConcurrent = listening
			}
			// 3. The client plays the next part (playback starts at the
			// arrival slot).
			next := c.played + 1
			if c.received[next] {
				c.played++
			} else {
				c.stats.Stalls++
				res.Stalls++
			}
			if buffered := int64(len(c.received)) - c.played; buffered > c.stats.MaxBuffer {
				c.stats.MaxBuffer = buffered
			}
			if c.played == fs.L && c.stats.FinishSlot == 0 {
				c.stats.FinishSlot = slot + 1
			}
		}
	}
	for _, c := range clients {
		if c.stats.MaxBuffer > res.MaxBuffer {
			res.MaxBuffer = c.stats.MaxBuffer
		}
		res.Clients = append(res.Clients, c.stats)
	}
	res.Slots = lastSlot - firstSlot
	return res, nil
}

func sortClients(cs []*client) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].arrival < cs[j-1].arrival; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
