package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mergetree"
	"repro/internal/online"
	"repro/internal/schedule"
)

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var order []int
	q.Push(&Event{Time: 3, Action: func() { order = append(order, 3) }})
	q.Push(&Event{Time: 1, Action: func() { order = append(order, 1) }})
	q.Push(&Event{Time: 2, Action: func() { order = append(order, 2) }})
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Peek().Time != 1 {
		t.Errorf("Peek time = %v, want 1", q.Peek().Time)
	}
	q.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired out of order: %v", order)
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Errorf("drained queue should return nil")
	}
}

func TestEventQueueTieBreakByPriority(t *testing.T) {
	var q EventQueue
	var order []int
	q.Push(&Event{Time: 1, Priority: 2, Action: func() { order = append(order, 2) }})
	q.Push(&Event{Time: 1, Priority: 1, Action: func() { order = append(order, 1) }})
	q.Run()
	if order[0] != 1 || order[1] != 2 {
		t.Errorf("priority tie-break failed: %v", order)
	}
}

func TestEventQueueCascadingEvents(t *testing.T) {
	var q EventQueue
	count := 0
	var schedule func(t float64)
	schedule = func(tm float64) {
		q.Push(&Event{Time: tm, Action: func() {
			count++
			if count < 5 {
				schedule(tm + 1)
			}
		}})
	}
	schedule(0)
	q.Run()
	if count != 5 {
		t.Errorf("cascading events ran %d times, want 5", count)
	}
}

func TestRunForestFig3(t *testing.T) {
	f := mergetree.NewForest(15)
	tr, err := mergetree.Parse("0(1 2 3(4) 5(6 7))")
	if err != nil {
		t.Fatal(err)
	}
	f.Add(tr)
	res, err := RunForest(f)
	if err != nil {
		t.Fatalf("RunForest: %v", err)
	}
	if res.Stalls != 0 {
		t.Errorf("playback stalled %d times; every client must play uninterrupted", res.Stalls)
	}
	if res.TotalBandwidth != 36 {
		t.Errorf("TotalBandwidth = %d, want 36", res.TotalBandwidth)
	}
	if res.PeakBandwidth != 4 {
		t.Errorf("PeakBandwidth = %d, want 4", res.PeakBandwidth)
	}
	if res.MaxBuffer != 7 {
		t.Errorf("MaxBuffer = %d, want 7", res.MaxBuffer)
	}
	if len(res.Clients) != 8 {
		t.Fatalf("expected 8 clients, got %d", len(res.Clients))
	}
	for _, c := range res.Clients {
		if c.MaxConcurrent > 2 {
			t.Errorf("client %d listened to %d streams at once", c.Arrival, c.MaxConcurrent)
		}
		if c.FinishSlot != c.Arrival+15 {
			t.Errorf("client %d finished at slot %d, want %d", c.Arrival, c.FinishSlot, c.Arrival+15)
		}
		if c.StartDelay != 0 {
			t.Errorf("client %d has start delay %d", c.Arrival, c.StartDelay)
		}
	}
	if got := res.NormalizedBandwidth(); got != 36.0/15.0 {
		t.Errorf("NormalizedBandwidth = %v", got)
	}
	if res.AverageBandwidth() <= 0 {
		t.Errorf("AverageBandwidth should be positive")
	}
}

func TestRunForestMatchesAnalyticCosts(t *testing.T) {
	// The simulator's measured bandwidth must equal the analytic full cost
	// for optimal forests (up to the clamping of streams at length L, which
	// never triggers for optimal forests).
	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 14}, {4, 16}, {8, 40}, {50, 120}} {
		f := core.OptimalForest(c.L, c.n)
		res, err := RunForest(f)
		if err != nil {
			t.Fatalf("RunForest(L=%d,n=%d): %v", c.L, c.n, err)
		}
		if res.Stalls != 0 {
			t.Errorf("L=%d n=%d: %d stalls", c.L, c.n, res.Stalls)
		}
		if res.TotalBandwidth != core.FullCost(c.L, c.n) {
			t.Errorf("L=%d n=%d: simulated bandwidth %d != F(L,n) = %d",
				c.L, c.n, res.TotalBandwidth, core.FullCost(c.L, c.n))
		}
		if res.MaxBuffer > c.L/2 {
			t.Errorf("L=%d n=%d: buffer %d exceeds L/2", c.L, c.n, res.MaxBuffer)
		}
	}
}

func TestRunForestOnlineAlgorithm(t *testing.T) {
	srv := online.NewServer(30)
	f := srv.Forest(100)
	res, err := RunForest(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 {
		t.Errorf("on-line schedule stalled %d times", res.Stalls)
	}
	if res.TotalBandwidth != online.Cost(30, 100) {
		t.Errorf("simulated bandwidth %d != A(30,100) = %d", res.TotalBandwidth, online.Cost(30, 100))
	}
}

func TestRunReceiveAllSchedule(t *testing.T) {
	// The simulator executes receive-all schedules as well: clients listen
	// to every stream on their path and still play back without stalls, at
	// the lower Fw(L,n) bandwidth.
	f := core.OptimalForestAll(15, 14)
	fs, err := schedule.BuildReceiveAll(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSchedule(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 {
		t.Errorf("receive-all schedule stalled %d times", res.Stalls)
	}
	if res.TotalBandwidth != core.FullCostAll(15, 14) {
		t.Errorf("simulated bandwidth %d != Fw(15,14) = %d", res.TotalBandwidth, core.FullCostAll(15, 14))
	}
	if res.TotalBandwidth >= core.FullCost(15, 14) {
		t.Errorf("receive-all bandwidth should be below the receive-two optimum")
	}
}

func TestRunForestDetectsCorruptedSchedule(t *testing.T) {
	f := mergetree.NewForest(15)
	tr, _ := mergetree.Parse("0(1 2 3(4) 5(6 7))")
	f.Add(tr)
	fs, err := schedule.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate stream 5: clients 6 and 7 now miss parts and must stall.
	s := fs.Streams[5]
	s.Length = 3
	fs.Streams[5] = s
	res, err := RunSchedule(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls == 0 {
		t.Errorf("expected stalls after truncating a stream")
	}
}

func TestRunForestBufferedForest(t *testing.T) {
	f := core.OptimalForestBuffered(20, 4, 60)
	res, err := RunForest(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 {
		t.Errorf("stalls: %d", res.Stalls)
	}
	if res.MaxBuffer > 4 {
		t.Errorf("buffer bound violated: %d > 4", res.MaxBuffer)
	}
}

func TestRunScheduleEmpty(t *testing.T) {
	fs := &schedule.ForestSchedule{L: 10,
		Streams:  map[int64]schedule.StreamSchedule{},
		Programs: map[int64]*schedule.Program{}}
	res, err := RunSchedule(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBandwidth != 0 || len(res.Clients) != 0 {
		t.Errorf("empty schedule should produce an empty result")
	}
}

func TestRunScheduleInvalidL(t *testing.T) {
	fs := &schedule.ForestSchedule{L: 0,
		Streams:  map[int64]schedule.StreamSchedule{},
		Programs: map[int64]*schedule.Program{}}
	if _, err := RunSchedule(fs); err == nil {
		t.Errorf("expected error for invalid L")
	}
}

func TestClientsSortedInResult(t *testing.T) {
	f := core.OptimalForest(10, 25)
	res, err := RunForest(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Clients); i++ {
		if res.Clients[i].Arrival < res.Clients[i-1].Arrival {
			t.Fatalf("clients not sorted by arrival")
		}
	}
}

func BenchmarkRunForest(b *testing.B) {
	f := core.OptimalForest(50, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunForest(f); err != nil {
			b.Fatal(err)
		}
	}
}
