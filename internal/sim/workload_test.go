package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/multiobject"
	"repro/internal/online"
)

func testWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		Catalog:          multiobject.ZipfCatalog(3, 1.0, 0.05, 1.0),
		Horizon:          4,
		MeanInterArrival: 0.02,
		Poisson:          true,
		Seed:             42,
	}
}

func TestRunWorkloadPoissonZipf(t *testing.T) {
	res, err := RunWorkload(context.Background(), testWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 {
		t.Errorf("workload stalled %d times; the delay-guaranteed plan must never stall", res.Stalls)
	}
	if len(res.Objects) != 3 {
		t.Fatalf("expected 3 object results, got %d", len(res.Objects))
	}
	if res.Peak < 1 || res.TotalBusyTime <= 0 || res.AverageChannels() <= 0 {
		t.Errorf("aggregate profile not populated: %+v", res)
	}
	for i, o := range res.Objects {
		// The delay-guaranteed server is workload-oblivious: the measured
		// bandwidth must equal the on-line algorithm's analytic cost for the
		// object's horizon, whatever the arrival mix.
		L := o.Object.Slots()
		n := int64(math.Ceil(res.Horizon / o.Object.Delay))
		if want := online.Cost(L, n); o.Sim.TotalBandwidth != want {
			t.Errorf("object %d: simulated bandwidth %d != A(%d,%d) = %d", i, o.Sim.TotalBandwidth, L, n, want)
		}
		if o.Clients > o.Arrivals {
			t.Errorf("object %d: %d batched clients from %d arrivals", i, o.Clients, o.Arrivals)
		}
		if o.Clients != len(o.Sim.Clients) {
			t.Errorf("object %d: %d clients but %d simulated", i, o.Clients, len(o.Sim.Clients))
		}
		if o.Streams <= 0 {
			t.Errorf("object %d: non-positive measured streams %g", i, o.Streams)
		}
	}
	// Popularity ordering: the Zipf catalog is sorted by decreasing
	// popularity, so arrival counts must not trend upward.
	if res.Objects[0].Arrivals < res.Objects[2].Arrivals {
		t.Errorf("most popular object got %d arrivals, least popular %d",
			res.Objects[0].Arrivals, res.Objects[2].Arrivals)
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	a, err := RunWorkload(context.Background(), testWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(context.Background(), testWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must reproduce the same workload result")
	}
}

func TestRunWorkloadConstantRate(t *testing.T) {
	cfg := testWorkloadConfig()
	cfg.Poisson = false
	res, err := RunWorkload(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 {
		t.Errorf("stalls: %d", res.Stalls)
	}
	for i, o := range res.Objects {
		if o.Arrivals == 0 {
			t.Errorf("object %d received no constant-rate arrivals", i)
		}
	}
}

func TestRunWorkloadValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*WorkloadConfig)
	}{
		{"empty-catalog", func(c *WorkloadConfig) { c.Catalog = nil }},
		{"bad-horizon", func(c *WorkloadConfig) { c.Horizon = 0 }},
		{"bad-mean", func(c *WorkloadConfig) { c.MeanInterArrival = -1 }},
		{"bad-object", func(c *WorkloadConfig) { c.Catalog[0].Delay = -1 }},
	}
	for _, tc := range cases {
		cfg := testWorkloadConfig()
		tc.mut(&cfg)
		if _, err := RunWorkload(context.Background(), cfg); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
