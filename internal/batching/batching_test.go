package batching

import (
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
)

func TestDelayGuaranteedCost(t *testing.T) {
	if got := DelayGuaranteedCost(15, 8); got != 120 {
		t.Errorf("DelayGuaranteedCost(15,8) = %d, want 120", got)
	}
	if got := DelayGuaranteedCost(15, 0); got != 0 {
		t.Errorf("zero slots should cost 0")
	}
}

func TestDelayGuaranteedCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	DelayGuaranteedCost(0, 5)
}

func TestDelayGuaranteedNeverBeatsMerging(t *testing.T) {
	// Theorem 14's premise: batching alone costs n*L, which is never below
	// the optimal merged full cost.
	for _, L := range []int64{1, 4, 15, 100} {
		for _, n := range []int64{1, 7, 50, 300} {
			if DelayGuaranteedCost(L, n) < core.FullCost(L, n) {
				t.Errorf("batching beat merging for L=%d n=%d", L, n)
			}
		}
	}
}

func TestBatchedCost(t *testing.T) {
	tr := arrivals.Trace{0.001, 0.004, 0.013, 0.029, 0.041}
	// Slots of length 0.01: occupied slots 0, 1, 2, 4 -> 4 full streams.
	if got := BatchedCost(tr, 0.01); got != 4 {
		t.Errorf("BatchedCost = %v, want 4", got)
	}
	if got := BatchedCost(arrivals.Trace{}, 0.01); got != 0 {
		t.Errorf("empty trace should cost 0")
	}
}

func TestBatchedCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	BatchedCost(arrivals.Trace{0.1}, 0)
}

func TestImmediateUnicastCost(t *testing.T) {
	tr := arrivals.Constant(0.01, 1.0)
	if got := ImmediateUnicastCost(tr); got != float64(len(tr)) {
		t.Errorf("ImmediateUnicastCost = %v, want %v", got, len(tr))
	}
}

func TestBatchedNeverExceedsUnicast(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := arrivals.Poisson(0.004, 3, seed)
		if BatchedCost(tr, 0.01) > ImmediateUnicastCost(tr) {
			t.Errorf("batching should never start more streams than unicast (seed %d)", seed)
		}
	}
}

func TestStreamTimesWithinDelay(t *testing.T) {
	tr := arrivals.Poisson(0.02, 5, 3)
	times := StreamTimes(tr, 0.05)
	if len(times) != len(tr.BatchToSlots(0.05)) {
		t.Fatalf("StreamTimes length mismatch")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("StreamTimes not increasing")
		}
	}
}
