// Package batching implements the classic batching baselines discussed in
// Section 1 and used in the empirical comparison of Section 4.2.
//
// A batching server groups requests for up to one guaranteed start-up delay
// and then broadcasts the complete media once for each non-empty batch; it
// never truncates streams and clients need neither extra receive bandwidth
// nor buffers.  In the delay-guaranteed setting (an arrival in every slot)
// this costs n*L, which Theorem 14 shows is Theta(L/log L) worse than
// batching combined with stream merging.
package batching

import (
	"fmt"

	"repro/internal/arrivals"
)

// DelayGuaranteedCost returns the total bandwidth (in slot units) of pure
// batching in the delay-guaranteed setting with n slots and media length L
// slots: the whole media is broadcast once per slot.
func DelayGuaranteedCost(L, n int64) int64 {
	if L < 1 || n < 0 {
		panic(fmt.Sprintf("batching: invalid L=%d n=%d", L, n))
	}
	return n * L
}

// BatchedCost returns the total bandwidth, in units of complete media
// streams, of a batching server that serves a non-empty batch at the end of
// every slot of length `delay`: one full stream per occupied slot.
func BatchedCost(trace arrivals.Trace, delay float64) float64 {
	if delay <= 0 {
		panic(fmt.Sprintf("batching: delay must be positive, got %g", delay))
	}
	return float64(len(trace.BatchToSlots(delay)))
}

// ImmediateUnicastCost returns the total bandwidth, in units of complete
// media streams, of serving every client with a private full stream the
// moment it arrives (the no-multicast strawman of Section 1).
func ImmediateUnicastCost(trace arrivals.Trace) float64 {
	return float64(len(trace))
}

// StreamTimes returns the times at which a batching server with the given
// delay starts full streams for the trace (the ends of non-empty slots).
func StreamTimes(trace arrivals.Trace, delay float64) []float64 {
	return trace.BatchTimes(delay)
}
