package live

// White-box tests of the incremental scheduler core: registry shape,
// epoch splicing (a multi-epoch live run equals the sum of per-epoch
// batch plans), the online adapter's oblivious accounting, and the
// never-fail replan fallback.

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/multiobject"
)

func testObject(delay float64) multiobject.Object {
	return multiobject.Object{Name: "x", Length: 1, Popularity: 1, Delay: delay}
}

func TestPlannersCapabilityList(t *testing.T) {
	want := []string{"batching", "dyadic", "dyadic-batched", "hybrid", "offline", "offline-batched", "online", "unicast"}
	if got := Planners(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Planners() = %v, want %v", got, want)
	}
	if _, err := New("nope", Config{Object: testObject(0.1)}); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("unknown strategy error = %v", err)
	}
}

// countSink tallies stream events.
type countSink struct {
	started, provisional, finalized, trimmed int
	busy                                     float64
}

func (c *countSink) StreamStarted(float64)      { c.started++ }
func (c *countSink) ProvisionalStarted(float64) { c.provisional++ }
func (c *countSink) StreamFinalized(_, length float64) {
	c.finalized++
	c.busy += length
}
func (c *countSink) StreamTrimmed(_, _ float64) { c.trimmed++ }

// TestEpochSplicing pins the boundary-isolation property: a live run with
// epochs of E slots, drained at a multiple of E, reports exactly the sum
// of the per-epoch batch plans (merging never crosses a boundary), for
// every epoch-based strategy.
func TestEpochSplicing(t *testing.T) {
	const (
		delay      = 0.125
		epochSlots = 8 // epoch length 1.0
		horizon    = 3.0
	)
	obj := testObject(delay)
	times := []float64{0.05, 0.1, 0.3, 0.9, 1.0, 1.45, 1.5, 2.25, 2.3, 2.9}
	for _, st := range epochStrategies {
		st := st
		t.Run(st.name, func(t *testing.T) {
			sink := &countSink{}
			sched, err := New(st.name, Config{Object: obj, EpochSlots: epochSlots, Sink: sink})
			if err != nil {
				t.Fatal(err)
			}
			for _, at := range times {
				sched.Admit(at)
			}
			end := sched.Drain(horizon)
			if end != horizon {
				t.Errorf("Drain end = %g, want %g (exact multiple of the epoch)", end, horizon)
			}
			tot := sched.Totals()

			var wantStreams int64
			var wantCost float64
			for k := 0.0; k < horizon; k++ {
				var epochTimes []float64
				for _, at := range times {
					if at >= k && at < k+1 {
						epochTimes = append(epochTimes, at-k)
					}
				}
				streams, cost, err := BatchReference(st.name, epochTimes, 1.0, obj, false, 1)
				if err != nil {
					t.Fatal(err)
				}
				wantStreams += streams
				wantCost += cost
			}
			if tot.Streams != wantStreams {
				t.Errorf("streams = %d, want %d (sum of per-epoch plans)", tot.Streams, wantStreams)
			}
			if tot.Cost != wantCost {
				t.Errorf("cost = %g, want %g (sum of per-epoch plans)", tot.Cost, wantCost)
			}
			if tot.FinalizedStreams != tot.Streams {
				t.Errorf("finalized %d of %d streams", tot.FinalizedStreams, tot.Streams)
			}
			if int64(sink.started) != tot.Streams || int64(sink.finalized) != tot.Streams {
				t.Errorf("sink saw %d started / %d finalized, want %d", sink.started, sink.finalized, tot.Streams)
			}
			if tot.ReplanFailures != 0 {
				t.Errorf("%d replan fallbacks", tot.ReplanFailures)
			}
		})
	}
}

// TestOnlineSchedObliviousDrain: with no arrivals at all, the online
// scheduler still transmits the full oblivious plan for the horizon.
func TestOnlineSchedObliviousDrain(t *testing.T) {
	sink := &countSink{}
	sched, err := New("online", Config{Object: testObject(0.125), Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	end := sched.Drain(1.0)
	if end != 1.0 {
		t.Fatalf("Drain end = %g, want 1.0", end)
	}
	tot := sched.Totals()
	if tot.Streams != 8 || tot.FinalizedStreams != 8 {
		t.Fatalf("streams = %d/%d, want 8 oblivious slot streams", tot.Streams, tot.FinalizedStreams)
	}
	if tot.Clients != 0 {
		t.Errorf("clients = %d, want 0", tot.Clients)
	}
	if tot.Cost != float64(tot.SlotUnits)/8 {
		t.Errorf("cost %g inconsistent with %d slot units", tot.Cost, tot.SlotUnits)
	}
	if math.Abs(sink.busy-float64(tot.SlotUnits)*0.125) > 1e-12 {
		t.Errorf("sink busy %g != slot units %d * delay", sink.busy, tot.SlotUnits)
	}
}

// TestReplanFallback: a failing batch planner must not break the serving
// path — the epoch falls back to unicast streams and counts the failure.
func TestReplanFallback(t *testing.T) {
	boom := epochStrategy{name: "boom", replan: func([]float64, float64, PlanParams) (PlanOutcome, error) {
		return PlanOutcome{}, errors.New("synthetic failure")
	}}
	cfg, err := Config{Object: testObject(0.1), Sink: &countSink{}}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s := newEpochSched(boom, cfg)
	s.Admit(0.05)
	s.Admit(0.3)
	s.Drain(1)
	tot := s.Totals()
	if tot.ReplanFailures != 1 {
		t.Fatalf("replan failures = %d, want 1", tot.ReplanFailures)
	}
	if tot.Streams != 2 || tot.Cost != 2 {
		t.Fatalf("fallback totals = %+v, want 2 unicast streams costing 2", tot)
	}
}

// TestAdmissionDisciplines pins the service terms per family: batched
// strategies start playback at the slot end, immediate ones at the
// arrival, and client counting follows the discipline.
func TestAdmissionDisciplines(t *testing.T) {
	obj := testObject(0.25)
	mk := func(name string) Incremental {
		s, err := New(name, Config{Object: obj})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	batched := mk("batching")
	if adm := batched.Admit(0.3); adm.Slot != 1 || adm.StartAt != 0.5 {
		t.Errorf("batched admit(0.3) = %+v, want slot 1 starting at 0.5", adm)
	}
	batched.Admit(0.4) // same slot: not a new client
	if tot := batched.Totals(); tot.Clients != 1 {
		t.Errorf("batched clients = %d, want 1 (same slot)", tot.Clients)
	}

	imm := mk("dyadic")
	if adm := imm.Admit(0.3); adm.StartAt != 0.3 {
		t.Errorf("immediate admit(0.3) starts at %g, want 0.3", adm.StartAt)
	}
	imm.Admit(0.3) // tie: shares the stream
	if tot := imm.Totals(); tot.Clients != 1 {
		t.Errorf("immediate clients = %d, want 1 (tied arrivals share)", tot.Clients)
	}

	uni := mk("unicast")
	uni.Admit(0.3)
	uni.Admit(0.3) // ties still get private streams
	if tot := uni.Totals(); tot.Clients != 2 {
		t.Errorf("unicast clients = %d, want 2", tot.Clients)
	}

	onl := mk("online")
	if adm := onl.Admit(0.3); adm.Slot != 1 || adm.StartAt != 0.5 || len(adm.Program) == 0 {
		t.Errorf("online admit(0.3) = %+v, want slot 1 at 0.5 with a program", adm)
	}
}

// TestEpochSlotMonotone pins the ticket contract across replanning
// epochs: a batched strategy's Admission slots keep counting through
// epoch rolls (slot = epoch*EpochSlots + relative slot), so (delay-epoch,
// Slot) never repeats for distinct service slots.
func TestEpochSlotMonotone(t *testing.T) {
	s, err := New("batching", Config{Object: testObject(0.25), EpochSlots: 4}) // epoch length 1.0
	if err != nil {
		t.Fatal(err)
	}
	first := s.Admit(0.3)
	second := s.Admit(1.3) // next replanning epoch, same relative slot
	if first.Slot != 1 || first.StartAt != 0.5 {
		t.Errorf("admit(0.3) = %+v, want slot 1 at 0.5", first)
	}
	if second.Slot != 5 || second.StartAt != 1.5 {
		t.Errorf("admit(1.3) = %+v, want slot 5 (epoch 1 * 4 slots + 1) at 1.5", second)
	}
}

// TestEpochPressureClose: a flood of same-timestamp arrivals (which never
// advances the clock, so the epoch would never roll) is bounded by the
// pressure close — the epoch is planned and re-based early instead of
// collecting arrivals without limit, and slots stay monotone across it.
func TestEpochPressureClose(t *testing.T) {
	old := maxEpochArrivals
	maxEpochArrivals = 8
	defer func() { maxEpochArrivals = old }()
	s, err := New("unicast", Config{Object: testObject(0.25), EpochSlots: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Admit(0.3) // clock never moves
	}
	if got := s.Totals().Streams; got != 16 {
		t.Errorf("streams after pressure closes = %d, want 16 (two closed epochs of 8)", got)
	}
	s.Drain(1)
	tot := s.Totals()
	if tot.Streams != 20 || tot.Cost != 20 || tot.ReplanFailures != 0 {
		t.Errorf("drained totals = %+v, want 20 unicast streams costing 20", tot)
	}

	// The batched variant keeps slots monotone across a pressure re-base.
	b, err := New("batching", Config{Object: testObject(0.25), EpochSlots: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	for i := 0; i < 20; i++ {
		adm := b.Admit(float64(i) * 0.13)
		if adm.Slot < last {
			t.Fatalf("admit %d: slot %d regressed below %d across a pressure close", i, adm.Slot, last)
		}
		last = adm.Slot
	}
}

// TestProvisionalGaugePlaceholders: every distinct client of an
// epoch-replanned strategy occupies one provisional gauge channel
// immediately at admission (the unicast upper bound), and the epoch
// close retires whatever is still outstanding — so a channel cap can
// throttle epoch strategies mid-epoch.
func TestProvisionalGaugePlaceholders(t *testing.T) {
	sink := &countSink{}
	s, err := New("dyadic-batched", Config{Object: testObject(0.125), EpochSlots: 1 << 20, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0.05)
	s.Admit(0.07) // same slot: no new placeholder
	s.Admit(0.30)
	if sink.provisional != 2 {
		t.Fatalf("provisional placeholders = %d, want 2 (one per occupied slot)", sink.provisional)
	}
	if sink.started != 0 {
		t.Fatalf("real streams started before epoch close: %d", sink.started)
	}
	s.Drain(1.0)
	// Both placeholders end after the close (start + media length > 1.0),
	// so both are trimmed and replaced by the real plan's streams.
	if sink.trimmed != 2 {
		t.Errorf("trimmed placeholders = %d, want 2", sink.trimmed)
	}
	if tot := s.Totals(); int64(sink.started) != tot.Streams {
		t.Errorf("real streams started %d != totals %d", sink.started, tot.Streams)
	}
}
