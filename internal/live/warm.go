package live

import (
	"context"
	"math"

	"repro/internal/arrivals"
	"repro/internal/dyadic"
	"repro/internal/offline"
)

// Warm-start epoch replanning.
//
// A cold epoch close re-runs the whole batch planner over the epoch's
// arrivals — for the off-line strategies that is the banded Knuth DP, an
// O(n * W^2)-flavored bill paid at the boundary even though most of the
// epoch was known long before it.  A warmState instead absorbs arrivals
// into resumable planner state as they are admitted (observe), so the
// close (replan) pays only for the un-absorbed tail.  The contract is
// strict bit-identity: a warm replan either reproduces the cold
// replanner's PlanOutcome (and errors) exactly, or declines with
// handled == false and the cold path runs untouched.  Consecutive epochs
// have disjoint epoch-relative traces, so warm state never outlives its
// epoch — the scheduler resets it at every close (and hence at drain).
//
// Strategy coverage: offline and offline-batched carry resumable banded
// tables (offline.Tables.Extend + AdvancePartition); batching, dyadic,
// and dyadic-batched carry their deduplicated service-time prefix, which
// is the whole of their planner input.  Unicast's replan is O(n) copying
// with no reusable state, and the hybrid's mode classification is a
// single O(n + slots) sweep with no superlinear component, so both stay
// cold by design (documented in DESIGN.md); their closes still count in
// ReplanStats.Replans.

// warmReport is the per-close reuse accounting a warm replan returns.
type warmReport struct {
	// cellsReused are the off-line DP cells already present from mid-epoch
	// absorption; cellsRecomputed are the cells the close itself filled.
	cellsReused, cellsRecomputed int64
}

// warmState is one epoch strategy's resumable replanning state.  All
// methods run on the shard event loop, single-goroutine.
type warmState interface {
	// observe absorbs one admitted arrival (epoch-relative, nondecreasing;
	// exactly the values appended to the scheduler's trace).
	observe(rel float64)
	// replan answers an epoch close over the full recorded trace.  When
	// handled is true the outcome (or error) is bit-identical to the cold
	// replanner's on the same inputs; when false the caller must run the
	// cold path.  Either way the caller resets the state afterwards.
	replan(times []float64, relHorizon float64) (PlanOutcome, warmReport, bool, error)
	// reset discards all per-epoch state (retained capacity may be kept).
	reset()
}

// dedupTrace accumulates a planner-input trace incrementally: occupied
// slot ends for batched strategies (mirroring arrivals.Trace.BatchTimes
// float for float), adjacent-equal-collapsed raw times for immediate ones
// (mirroring the dyadic and off-line tie handling).
type dedupTrace struct {
	delay   float64
	batched bool

	times    []float64
	lastSlot int64
	hasSlot  bool
}

func (d *dedupTrace) observe(rel float64) bool {
	if d.batched {
		slot := int64(math.Floor(rel / d.delay))
		if d.hasSlot && slot == d.lastSlot {
			return false
		}
		d.hasSlot = true
		d.lastSlot = slot
		d.times = append(d.times, float64(slot+1)*d.delay)
		return true
	}
	if n := len(d.times); n > 0 && rel == d.times[n-1] {
		return false
	}
	d.times = append(d.times, rel)
	return true
}

func (d *dedupTrace) reset() {
	d.times = d.times[:0]
	d.hasSlot = false
}

// tablesWarm is the resumable off-line replanner (offline and
// offline-batched): it grows one retained offline.Tables handle by
// Extend as arrivals are absorbed and advances the partition prefix DP
// alongside, so SolveForest at the close costs only the tail.
type tablesWarm struct {
	p  PlanParams
	in dedupTrace

	tab      *offline.Tables
	absorbed int  // prefix of in.times already extended into tab
	dead     bool // absorption failed or over budget: cold for this epoch
}

// warmAbsorbMin batches absorption: a chunk is worth an Extend once it
// reaches max(warmAbsorbMin, absorbed/8) deduplicated arrivals, keeping
// per-arrival overhead O(1) amortized while the close's tail stays small.
const warmAbsorbMin = 32

// warmAbsorbBudget caps mid-epoch table growth at 2/3 of the cold path's
// instance cap: epochs headed past it are left to the cold close (which
// re-checks its own caps on its own inputs and falls back identically
// with or without warm state).
const warmAbsorbBudget = maxOfflineEpochTableBytes * 2 / 3

func newTablesWarm(batched bool) func(p PlanParams) warmState {
	return func(p PlanParams) warmState {
		return &tablesWarm{p: p, in: dedupTrace{delay: p.Delay, batched: batched}}
	}
}

func (w *tablesWarm) observe(rel float64) {
	if !w.in.observe(rel) || w.dead {
		return
	}
	if len(w.in.times)-w.absorbed >= warmAbsorbMin+w.absorbed/8 {
		w.absorb()
	}
}

// absorb extends the retained table (creating it on first use) over the
// pending deduplicated suffix and advances the partition DP.  Any
// failure — over budget, cancelled context, uncoverable gap — marks the
// state dead for the rest of the epoch; the cold close then reproduces
// exactly what cold-only mode would have done.
func (w *tablesWarm) absorb() {
	if offline.BandBytes(w.in.times, w.p.MediaLength) > warmAbsorbBudget {
		w.kill()
		return
	}
	ctx := w.p.Ctx
	if ctx == nil {
		//modlint:ignore ctxflow defensive root for directly-built PlanParams; scheduler configs always carry a context
		ctx = context.Background()
	}
	if w.tab == nil {
		tab, err := offline.ComputeTables(ctx, nil, offline.ReceiveTwo, w.p.MediaLength, w.p.Workers)
		if err != nil {
			w.kill()
			return
		}
		w.tab = tab
	}
	if err := w.tab.Extend(ctx, w.in.times[w.absorbed:], w.p.Workers); err != nil {
		w.kill()
		return
	}
	w.absorbed = len(w.in.times)
	if err := w.tab.AdvancePartition(w.p.MediaLength); err != nil {
		// An uncoverable gap: the cold close will hit the identical error
		// in its own partition DP and fall back, warm or not.
		w.kill()
	}
}

func (w *tablesWarm) kill() {
	w.dead = true
	w.tab = nil
}

func (w *tablesWarm) replan(times []float64, relHorizon float64) (PlanOutcome, warmReport, bool, error) {
	var rep warmReport
	if w.dead || len(times) == 0 {
		return PlanOutcome{}, rep, false, nil
	}
	if times[len(times)-1] >= relHorizon {
		// Clipping would drop arrivals; only the cold path does that
		// (never reached by the epoch scheduler, whose closes always
		// cover the recorded trace — defensive).
		return PlanOutcome{}, rep, false, nil
	}
	// Re-check the cold path's instance caps on the cold path's exact
	// inputs — raw times for offline, batched slot ends (== in.times) for
	// offline-batched — so warm-on and warm-off refuse the same epochs.
	coldIn := times
	if w.in.batched {
		coldIn = w.in.times
	}
	if len(coldIn) > maxOfflineEpochArrivals {
		return PlanOutcome{}, rep, false, nil
	}
	if offline.BandBytes(coldIn, w.p.MediaLength) > maxOfflineEpochTableBytes {
		return PlanOutcome{}, rep, false, nil
	}
	if w.tab != nil {
		rep.cellsReused = w.tab.Cells()
	}
	if w.tab == nil || w.absorbed < len(w.in.times) {
		w.absorb()
		if w.dead {
			return PlanOutcome{}, rep, false, nil
		}
	}
	f, err := w.tab.SolveForest(w.p.MediaLength)
	rep.cellsRecomputed = w.tab.Cells() - rep.cellsReused
	if err != nil {
		// The cold DP fails identically on this instance; report the error
		// so the close falls back exactly like a cold failure.
		return PlanOutcome{}, rep, true, err
	}
	return PlanOutcome{
		Cost:    f.NormalizedCost(),
		Busy:    f.Cost,
		Streams: appendForestStreams(nil, f.Forest),
	}, rep, true, nil
}

func (w *tablesWarm) reset() {
	w.in.reset()
	w.tab = nil
	w.absorbed = 0
	w.dead = false
}

// startsWarm carries the deduplicated service-start prefix that is the
// entire planner input of the batching and dyadic strategies: the close
// skips the O(n) clip+batch/dedupe rescan over the raw trace and plans
// straight from the maintained starts.
type startsWarm struct {
	p  PlanParams
	in dedupTrace
	// forest: build the dyadic merge forest over the starts (dyadic,
	// dyadic-batched); otherwise one full stream per start (batching).
	forest bool
}

func newStartsWarm(batched, forest bool) func(p PlanParams) warmState {
	return func(p PlanParams) warmState {
		return &startsWarm{p: p, in: dedupTrace{delay: p.Delay, batched: batched}, forest: forest}
	}
}

func (w *startsWarm) observe(rel float64) { w.in.observe(rel) }

func (w *startsWarm) replan(times []float64, relHorizon float64) (PlanOutcome, warmReport, bool, error) {
	var rep warmReport
	if len(times) == 0 {
		return PlanOutcome{}, rep, false, nil
	}
	if times[len(times)-1] >= relHorizon {
		return PlanOutcome{}, rep, false, nil
	}
	if w.forest {
		// dyadic.BuildForest dedupes internally, so feeding it the already
		// deduplicated starts is bit-identical to the cold call on the raw
		// (or cold-batched) trace.
		f, err := dyadic.BuildForest(arrivals.Trace(w.in.times), w.p.MediaLength, w.p.dyadicParams())
		if err != nil {
			return PlanOutcome{}, rep, true, err
		}
		return forestOutcome(f), rep, true, nil
	}
	// Merging-free batching: batching.BatchedCost is exactly the occupied
	// slot count, which is len(in.times) by construction.
	out := PlanOutcome{
		Cost: float64(len(w.in.times)),
		Busy: float64(len(w.in.times)) * w.p.MediaLength,
	}
	out.Streams = make([]Stream, len(w.in.times))
	for i, t := range w.in.times {
		out.Streams[i] = Stream{Start: t, Length: w.p.MediaLength}
	}
	return out, rep, true, nil
}

func (w *startsWarm) reset() { w.in.reset() }
