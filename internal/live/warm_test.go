package live

// Warm-start replanning tests: a scheduler with warm state enabled must
// be observationally identical — every sink event, every total — to the
// same scheduler replanning cold, across strategies, epoch shapes, ties,
// pressure closes, and drains.  The only permitted difference is the
// ReplanStats reuse accounting itself.

import (
	"math/rand"
	"reflect"
	"testing"
)

// sinkEvent is one recorded Sink call; floats are compared exactly, so
// equality here is bit-identity of the schedule.
type sinkEvent struct {
	kind string
	a, b float64
}

type recordSink struct{ events []sinkEvent }

func (r *recordSink) StreamStarted(estEnd float64) {
	r.events = append(r.events, sinkEvent{"started", estEnd, 0})
}
func (r *recordSink) ProvisionalStarted(estEnd float64) {
	r.events = append(r.events, sinkEvent{"provisional", estEnd, 0})
}
func (r *recordSink) StreamFinalized(start, length float64) {
	r.events = append(r.events, sinkEvent{"finalized", start, length})
}
func (r *recordSink) StreamTrimmed(end, staleEnd float64) {
	r.events = append(r.events, sinkEvent{"trimmed", end, staleEnd})
}

// warmTrace builds a nondecreasing arrival trace with deliberate ties and
// same-slot clusters — the cases the warm dedupe must mirror exactly.
func warmTrace(rng *rand.Rand, n int, horizon float64) []float64 {
	out := make([]float64, 0, n)
	at := 0.0
	for len(out) < n && at < horizon*0.95 {
		switch rng.Intn(4) {
		case 0: // exact tie
		case 1: // same-slot cluster
			at += rng.Float64() * 0.01
		default:
			at += rng.Float64() * horizon / float64(n) * 4
		}
		out = append(out, at)
	}
	return out
}

func runWarmCase(t *testing.T, name string, cold bool, times []float64, epochSlots int, horizon float64) (*recordSink, float64, Totals) {
	t.Helper()
	sink := &recordSink{}
	s, err := New(name, Config{Object: testObject(0.125), EpochSlots: epochSlots, Sink: sink, ColdReplan: cold})
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range times {
		if i%7 == 3 {
			s.Advance(at)
		}
		s.Admit(at)
	}
	end := s.Drain(horizon)
	return sink, end, s.Totals()
}

// TestWarmReplanBitIdentical is the warm-start contract for every live
// strategy: with warm replanning on (the default), every sink event and
// every total matches the cold run exactly; only the ReplanStats reuse
// counters may differ.
func TestWarmReplanBitIdentical(t *testing.T) {
	warmCapable := map[string]bool{
		"offline": true, "offline-batched": true,
		"dyadic": true, "dyadic-batched": true, "batching": true,
	}
	for _, st := range epochStrategies {
		st := st
		t.Run(st.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 6; trial++ {
				horizon := 2 + rng.Float64()*4
				n := 20 + rng.Intn(180)
				epochSlots := []int{4, 16, 1 << 20}[trial%3]
				times := warmTrace(rng, n, horizon)

				warmSink, warmEnd, warmTot := runWarmCase(t, st.name, false, times, epochSlots, horizon)
				coldSink, coldEnd, coldTot := runWarmCase(t, st.name, true, times, epochSlots, horizon)

				if warmEnd != coldEnd {
					t.Fatalf("trial %d: drain end %v (warm) != %v (cold)", trial, warmEnd, coldEnd)
				}
				if !reflect.DeepEqual(warmSink.events, coldSink.events) {
					t.Fatalf("trial %d: sink event streams diverge (%d warm vs %d cold events)",
						trial, len(warmSink.events), len(coldSink.events))
				}
				if warmTot.Replan.Replans != coldTot.Replan.Replans {
					t.Fatalf("trial %d: replan count %d (warm) != %d (cold)",
						trial, warmTot.Replan.Replans, coldTot.Replan.Replans)
				}
				if warmCapable[st.name] && warmTot.Replan.WarmReplans != warmTot.Replan.Replans {
					t.Fatalf("trial %d: only %d of %d replans were warm",
						trial, warmTot.Replan.WarmReplans, warmTot.Replan.Replans)
				}
				if coldTot.Replan.WarmReplans != 0 || !warmCapable[st.name] && warmTot.Replan.WarmReplans != 0 {
					t.Fatalf("trial %d: unexpected warm replans (warm %d, cold %d)",
						trial, warmTot.Replan.WarmReplans, coldTot.Replan.WarmReplans)
				}
				warmTot.Replan, coldTot.Replan = ReplanStats{}, ReplanStats{}
				if warmTot != coldTot {
					t.Fatalf("trial %d: totals diverge:\nwarm %+v\ncold %+v", trial, warmTot, coldTot)
				}
			}
		})
	}
}

// TestWarmReplanPressureClose drives the pressure-close path (ties that
// never advance the clock) with warm state on and off.
func TestWarmReplanPressureClose(t *testing.T) {
	old := maxEpochArrivals
	maxEpochArrivals = 16
	defer func() { maxEpochArrivals = old }()
	times := make([]float64, 0, 100)
	for i := 0; i < 100; i++ {
		times = append(times, 0.3+float64(i/25)*0.05) // 4 bursts of 25 ties
	}
	for _, name := range []string{"offline", "offline-batched", "batching", "dyadic"} {
		warmSink, _, warmTot := runWarmCase(t, name, false, times, 1<<20, 1)
		coldSink, _, coldTot := runWarmCase(t, name, true, times, 1<<20, 1)
		if !reflect.DeepEqual(warmSink.events, coldSink.events) {
			t.Fatalf("%s: pressure-close event streams diverge", name)
		}
		warmTot.Replan, coldTot.Replan = ReplanStats{}, ReplanStats{}
		if warmTot != coldTot {
			t.Fatalf("%s: pressure-close totals diverge:\nwarm %+v\ncold %+v", name, warmTot, coldTot)
		}
	}
}

// TestWarmAbsorbsMidEpoch checks the tentpole actually engages: a long
// single epoch must absorb arrivals into the retained table before the
// close, so the close reports reused cells alongside the recomputed tail.
func TestWarmAbsorbsMidEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	times := warmTrace(rng, 400, 40)
	for _, name := range []string{"offline", "offline-batched"} {
		_, _, tot := runWarmCase(t, name, false, times, 1<<20, 41)
		if tot.Replan.WarmReplans == 0 {
			t.Fatalf("%s: no warm replans", name)
		}
		if tot.Replan.CellsReused == 0 {
			t.Fatalf("%s: close reused no cells — mid-epoch absorption never ran (stats %+v)", name, tot.Replan)
		}
		if tot.Replan.CellsRecomputed == 0 {
			t.Fatalf("%s: close recomputed no cells (stats %+v)", name, tot.Replan)
		}
	}
}

// TestReplanLatencyMetering: an injected NowNanos clock meters replan
// wall time into the totals; without one the counters stay zero.
func TestReplanLatencyMetering(t *testing.T) {
	var clock int64
	s, err := New("offline", Config{
		Object:     testObject(0.125),
		EpochSlots: 4,
		NowNanos:   func() int64 { clock += 7; return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0.05)
	s.Admit(0.07)
	s.Drain(1.0)
	tot := s.Totals()
	if tot.Replan.Replans != 1 {
		t.Fatalf("replans = %d, want 1", tot.Replan.Replans)
	}
	if tot.Replan.ReplanNanos != 7 || tot.Replan.MaxReplanNanos != 7 {
		t.Fatalf("metered nanos = %d/%d, want 7/7 (one close, +7 per clock read)",
			tot.Replan.ReplanNanos, tot.Replan.MaxReplanNanos)
	}

	unmetered, err := New("offline", Config{Object: testObject(0.125), EpochSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	unmetered.Admit(0.05)
	unmetered.Drain(1.0)
	if rp := unmetered.Totals().Replan; rp.ReplanNanos != 0 || rp.MaxReplanNanos != 0 {
		t.Fatalf("clockless run metered nanos: %+v", rp)
	}
}

// TestReplanStatsAccumulate pins the fold: sums everywhere except
// MaxReplanNanos, which takes the maximum.
func TestReplanStatsAccumulate(t *testing.T) {
	a := Totals{Replan: ReplanStats{Replans: 2, WarmReplans: 1, CellsReused: 10, CellsRecomputed: 5, ReplanNanos: 100, MaxReplanNanos: 80}}
	b := Totals{Replan: ReplanStats{Replans: 3, WarmReplans: 3, CellsReused: 7, CellsRecomputed: 2, ReplanNanos: 50, MaxReplanNanos: 40}}
	a.Accumulate(b)
	want := ReplanStats{Replans: 5, WarmReplans: 4, CellsReused: 17, CellsRecomputed: 7, ReplanNanos: 150, MaxReplanNanos: 80}
	if a.Replan != want {
		t.Fatalf("accumulated replan stats = %+v, want %+v", a.Replan, want)
	}
}
