package live

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/multiobject"
)

// stateTestTrace is a deterministic arrival trace with duplicates,
// bursts, and quiet stretches, long enough to cross several epoch
// boundaries at EpochSlots=4 (epoch length 0.5 for delay 0.125).
var stateTestTrace = []float64{
	0.01, 0.01, 0.05, 0.13, 0.13, 0.13, 0.27, 0.44,
	0.61, 0.62, 0.90, 1.15, 1.15, 1.33, 1.71, 2.02,
	2.02, 2.02, 2.48, 2.90, 3.33, 3.34, 4.10, 4.97,
}

func stateTestConfig() Config {
	return Config{
		Object:     multiobject.Object{Name: "o", Length: 1, Delay: 0.125},
		EpochSlots: 4,
	}
}

// TestExportRestoreEquivalence is the live-layer half of crash-recovery
// equivalence: for every strategy and every cut point, a scheduler
// restored from an Export continues bit-identically to the uninterrupted
// original — same tail admissions, same drain end, same Totals.
func TestExportRestoreEquivalence(t *testing.T) {
	const horizon = 6.0
	for _, name := range Planners() {
		t.Run(name, func(t *testing.T) {
			for cut := 0; cut <= len(stateTestTrace); cut += 3 {
				ref, err := New(name, stateTestConfig())
				if err != nil {
					t.Fatalf("New(%q): %v", name, err)
				}
				subject, err := New(name, stateTestConfig())
				if err != nil {
					t.Fatalf("New(%q): %v", name, err)
				}
				for _, at := range stateTestTrace[:cut] {
					ref.Admit(at)
					subject.Admit(at)
				}
				st, err := Export(subject)
				if err != nil {
					t.Fatalf("cut=%d: Export: %v", cut, err)
				}
				if st.Strategy != name {
					t.Fatalf("cut=%d: exported strategy %q, want %q", cut, st.Strategy, name)
				}
				restored, err := Restore(name, stateTestConfig(), st)
				if err != nil {
					t.Fatalf("cut=%d: Restore: %v", cut, err)
				}
				for i, at := range stateTestTrace[cut:] {
					want := ref.Admit(at)
					got := restored.Admit(at)
					// Program is a scheduler-owned buffer; compare the values.
					if want.Slot != got.Slot || want.Delay != got.Delay || want.StartAt != got.StartAt ||
						!reflect.DeepEqual(want.Program, got.Program) {
						t.Fatalf("cut=%d: tail admission %d diverged:\n got %+v\nwant %+v", cut, i, got, want)
					}
				}
				wantEnd := ref.Drain(horizon)
				gotEnd := restored.Drain(horizon)
				if math.Float64bits(wantEnd) != math.Float64bits(gotEnd) {
					t.Fatalf("cut=%d: drain end %v, want %v", cut, gotEnd, wantEnd)
				}
				if got, want := restored.Totals(), ref.Totals(); !reflect.DeepEqual(got, want) {
					t.Fatalf("cut=%d: totals diverged:\n got %+v\nwant %+v", cut, got, want)
				}
			}
		})
	}
}

// countingSink counts every event kind.
type countingSink struct{ started, provisional, finalized, trimmed int }

func (c *countingSink) StreamStarted(float64)            { c.started++ }
func (c *countingSink) ProvisionalStarted(float64)       { c.provisional++ }
func (c *countingSink) StreamFinalized(float64, float64) { c.finalized++ }
func (c *countingSink) StreamTrimmed(float64, float64)   { c.trimmed++ }

// TestRestoreFiresNoSinkEvents: the serving layer restores its gauge and
// bandwidth accounting from its own snapshot sections, so Restore must
// not replay stream history into the Sink.
func TestRestoreFiresNoSinkEvents(t *testing.T) {
	for _, name := range Planners() {
		t.Run(name, func(t *testing.T) {
			src, err := New(name, stateTestConfig())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for _, at := range stateTestTrace {
				src.Admit(at)
			}
			st, err := Export(src)
			if err != nil {
				t.Fatalf("Export: %v", err)
			}
			sink := &countingSink{}
			cfg := stateTestConfig()
			cfg.Sink = sink
			if _, err := Restore(name, cfg, st); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if *sink != (countingSink{}) {
				t.Fatalf("Restore fired sink events: %+v", *sink)
			}
		})
	}
}

func TestRestoreRejectsMismatchedState(t *testing.T) {
	onl, err := New("online", stateTestConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := Export(onl)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	// Online state into an epoch strategy.
	if _, err := Restore("dyadic", stateTestConfig(), st); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Restore online state into dyadic = %v, want ErrBadConfig", err)
	}
	// Unknown strategy name.
	if _, err := Restore("no-such", stateTestConfig(), st); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("Restore unknown strategy = %v, want ErrUnknownStrategy", err)
	}
	// Epoch state into the online strategy.
	dy, err := New("dyadic", stateTestConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	est, err := Export(dy)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	est.Strategy = ""
	if _, err := Restore("online", stateTestConfig(), est); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Restore epoch state into online = %v, want ErrBadConfig", err)
	}
}
