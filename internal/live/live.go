// Package live is the incremental scheduler core of the serving layer: it
// turns every planner family in the repository into a scheduler that can
// drive live traffic, one object at a time.
//
// The batch layers answer "given this whole arrival trace, what is the
// plan?".  A live server cannot ask that question — requests arrive one by
// one and the horizon is unknown — so this package defines the Incremental
// interface (Admit an arrival, Advance the clock, Drain at a horizon) and
// provides one adapter per algorithm family:
//
//   - The on-line delay-guaranteed forest has a native incremental form
//     (the paper's whole point): a stream starts at every slot following
//     the static F_h template, merge groups are finalized the moment they
//     complete, and the trailing partial group is truncated at drain
//     exactly like the batch horizon.  This is the scheduler the serving
//     shards originally inlined; it lives here now.
//   - Every batch planner (the off-line optimal DP, the dyadic baselines,
//     pure batching, unicast, and the Section 5 hybrid with its
//     mode-switching timeline) becomes live through epoch-based
//     replanning: arrivals are collected for an epoch of E slots, the
//     batch planner is re-run over the epoch's arrivals when the boundary
//     passes, and the resulting plan is spliced in at the boundary.
//     Merging never crosses an epoch boundary (the same isolation the
//     hybrid applies to its segments), so with E at least the horizon a
//     drained live run reproduces the batch plan bit for bit — the
//     equivalence the serving tests pin for every strategy.
//
// Schedulers report their transmissions through a Sink (the serving shard
// turns those events into the live channel gauge and the real-time
// bandwidth record) and their accounting through Totals.  Registration is
// by the public planner registry name, so the capability list
// (Planners()) is the serving layer's answer to "which planners can serve
// live traffic".
package live

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/multiobject"
)

// ErrUnknownStrategy marks a strategy name with no registered live
// adapter; the message lists the live-capable planners.
var ErrUnknownStrategy = errors.New("live: no live adapter for planner")

// ErrBadConfig marks an invalid scheduler configuration.
var ErrBadConfig = errors.New("live: invalid configuration")

// Sink receives a scheduler's stream events.  The serving shard implements
// it: started streams raise the live channel gauge (with an estimated end
// for the gauge's event heap), finalized streams are recorded in the
// real-time bandwidth usage, and trims correct gauge estimates that
// truncation cut short.  All calls happen on the shard's event loop.
type Sink interface {
	// StreamStarted reports a transmission opened now, estimated to end at
	// estEnd (absolute time).  The estimate may later be trimmed.
	StreamStarted(estEnd float64)
	// ProvisionalStarted reports a merging-free placeholder channel for an
	// arrival an epoch-replanned strategy has admitted but not yet
	// planned: the admission gauge counts it (ending at estEnd, the
	// unicast upper bound) until the epoch closes and StreamTrimmed
	// replaces it with the real plan's streams.  Placeholders never reach
	// the bandwidth accounting.
	ProvisionalStarted(estEnd float64)
	// StreamFinalized reports a transmission whose length is final:
	// it occupies [start, start+length) in absolute time.
	StreamFinalized(start, length float64)
	// StreamTrimmed corrects an earlier StreamStarted/ProvisionalStarted
	// estimate: the stream actually ends at end, not at the stale estimate
	// staleEnd.
	StreamTrimmed(end, staleEnd float64)
}

// nopSink discards events; it backs schedulers run for pure accounting.
type nopSink struct{}

func (nopSink) StreamStarted(float64)            {}
func (nopSink) ProvisionalStarted(float64)       {}
func (nopSink) StreamFinalized(float64, float64) {}
func (nopSink) StreamTrimmed(float64, float64)   {}

// Admission is a scheduler's answer to one admitted arrival.
type Admission struct {
	// Slot is the arrival's service slot: the epoch-relative slot index for
	// slotted strategies, the client ordinal for immediate-service ones.
	Slot int64
	// Delay is the effective guaranteed start-up delay.
	Delay float64
	// StartAt is the absolute time playback starts: the end of the arrival
	// slot for slotted strategies, the arrival itself for immediate ones.
	StartAt float64
	// Program is the receiving program when the strategy can answer it
	// immediately (the on-line forest's O(1) lookup); nil for strategies
	// that decide merges at epoch close.  The slice is a buffer owned by
	// the scheduler, valid only until its next event — copy to retain.
	Program []int64
}

// Totals is a scheduler's accounting snapshot.  All fields are totals for
// the scheduler's lifetime; the serving shard accumulates them across
// delay epochs when degradation replaces a scheduler.
type Totals struct {
	// Clients counts distinct service instants: occupied slots for slotted
	// strategies, distinct (or, for unicast, all) arrival times otherwise.
	Clients int64
	// Streams counts transmissions started, including any unfinalized ones
	// of the on-line forest's current merge group.
	Streams int64
	// FinalizedStreams counts transmissions whose lengths are final.
	FinalizedStreams int64
	// SlotUnits is the finalized bandwidth in slot units — only the
	// slot-metered on-line forest reports it; epoch strategies leave it 0.
	SlotUnits int64
	// BusyTime is the finalized bandwidth in catalog time units.
	BusyTime float64
	// Cost is the finalized bandwidth in complete media streams — the
	// repository-wide comparison unit, bit-identical to the batch
	// planner's cost when a drain closes a whole-horizon epoch.
	Cost float64
	// ReplanFailures counts epoch replans that fell back to unicast
	// because the batch planner failed (never under normal operation).
	ReplanFailures int64
	// Replan summarizes the epoch replans behind the numbers above; the
	// native on-line scheduler never replans and leaves it zero.
	Replan ReplanStats
}

// ReplanStats summarizes epoch replanning for one scheduler.  Warm-start
// replanning absorbs an epoch's arrivals into resumable DP state as they
// are admitted, so the close pays only for the un-absorbed tail; these
// counters expose how much of each close was served from that state.
type ReplanStats struct {
	// Replans counts epoch closes that ran a batch replan.
	Replans int64 `json:"replans"`
	// WarmReplans counts replans answered from warm per-epoch state
	// (resumable banded tables or batched-start prefixes) instead of a
	// cold batch-planner run.
	WarmReplans int64 `json:"warm_replans"`
	// CellsReused and CellsRecomputed count off-line DP cells at warm
	// closes: cells carried over from mid-epoch absorption versus cells
	// the close itself had to fill.
	CellsReused     int64 `json:"cells_reused"`
	CellsRecomputed int64 `json:"cells_recomputed"`
	// ReplanNanos and MaxReplanNanos meter replan wall time (total, and
	// the worst single replan); both stay zero unless Config.NowNanos is
	// set, keeping deterministic paths clock-free.
	ReplanNanos    int64 `json:"replan_nanos"`
	MaxReplanNanos int64 `json:"max_replan_nanos"`
}

// accumulate folds another scheduler's replan stats into r.
func (r *ReplanStats) accumulate(o ReplanStats) {
	r.Replans += o.Replans
	r.WarmReplans += o.WarmReplans
	r.CellsReused += o.CellsReused
	r.CellsRecomputed += o.CellsRecomputed
	r.ReplanNanos += o.ReplanNanos
	if o.MaxReplanNanos > r.MaxReplanNanos {
		r.MaxReplanNanos = o.MaxReplanNanos
	}
}

// Accumulate folds another scheduler's totals into t (used by the serving
// shard to carry accounting across delay epochs).
func (t *Totals) Accumulate(o Totals) {
	t.Clients += o.Clients
	t.Streams += o.Streams
	t.FinalizedStreams += o.FinalizedStreams
	t.SlotUnits += o.SlotUnits
	t.BusyTime += o.BusyTime
	t.Cost += o.Cost
	t.ReplanFailures += o.ReplanFailures
	t.Replan.accumulate(o.Replan)
}

// Incremental is one object's live scheduler: the incremental form of a
// planner family.  Implementations are single-goroutine (the serving
// shard's event loop owns them); times passed to Admit/Advance/Drain must
// be monotone non-decreasing.
type Incremental interface {
	// Strategy returns the planner registry name this scheduler implements.
	Strategy() string
	// Admit records one arrival at absolute time t and returns its service
	// terms.  The scheduler may open streams (through the Sink) first.
	Admit(t float64) Admission
	// Advance moves the scheduler's clock to absolute time t, opening and
	// finalizing whatever the strategy schedules up to t.
	Advance(t float64)
	// Drain closes the schedule at the horizon (absolute time): remaining
	// streams are planned, opened, and finalized — the trailing partial
	// unit truncated exactly like the batch plan's — and the absolute end
	// of the last planning unit is returned (it can exceed the horizon
	// when a slot or an occupied arrival straddles it).  After Drain the
	// accounting in Totals is final.
	Drain(horizon float64) float64
	// Totals snapshots the accounting without mutating the schedule.
	Totals() Totals
}

// Config parameterizes a scheduler for one object (one delay epoch).
type Config struct {
	// Object is the served object; its Delay is the effective (possibly
	// degradation-scaled) delay of this scheduler.
	Object multiobject.Object
	// Base is the absolute time of the scheduler's slot 0.
	Base float64
	// EpochSlots is the replanning period of epoch-based strategies, in
	// slots of the object's delay; <= 0 replans only at drain time.  The
	// native on-line scheduler ignores it.
	EpochSlots int
	// ConstantRate selects the Section 4.2 constant-rate dyadic tuning
	// instead of the Poisson golden-ratio parameters (the default).
	ConstantRate bool
	// PlanWorkers sizes the off-line DP worker pool of epoch replans
	// (<= 0 means serial); results are bit-identical for any count.
	PlanWorkers int
	// Cache shares per-media-length static state (the on-line template and
	// its group lengths) across the schedulers of one shard; nil gives the
	// scheduler a private cache.
	Cache *Cache
	// Sink receives stream events; nil discards them.
	Sink Sink
	// Ctx bounds the scheduler's replan DPs: cancelling it aborts an
	// in-flight epoch DP within one work unit.  nil means Background
	// (never cancelled) — the batch facade's behaviour.
	Ctx context.Context
	// ColdReplan disables warm-start epoch replanning: epoch strategies
	// then re-run their batch planner from scratch at every close instead
	// of absorbing arrivals into resumable state mid-epoch.  Plans and
	// accounting are bit-identical either way (pinned by tests); the flag
	// exists for benchmarking and bisection.
	ColdReplan bool
	// NowNanos, when non-nil, supplies a monotonic clock reading used only
	// to meter replan latency into Totals.Replan.  The serving layer
	// injects it; deterministic simulation paths leave it nil — this
	// package never reads wall clocks itself.
	NowNanos func() int64
}

func (c Config) withDefaults() (Config, error) {
	if err := c.Object.Validate(); err != nil {
		return c, fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	if c.Cache == nil {
		c.Cache = NewCache()
	}
	if c.Sink == nil {
		c.Sink = nopSink{}
	}
	if c.Ctx == nil {
		//modlint:ignore ctxflow nil Ctx means "never cancelled"; this is the one place the default is rooted
		c.Ctx = context.Background()
	}
	return c, nil
}

// Factory builds a scheduler from a validated configuration.
type Factory func(cfg Config) (Incremental, error)

var registry = map[string]Factory{}

// Register adds a live adapter under a planner registry name.  Like the
// public planner registry, duplicate registration is a programming error.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("live: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("live: adapter %q registered twice", name))
	}
	registry[name] = f
}

// New builds the named strategy's scheduler.  Unknown names fail with an
// error wrapping ErrUnknownStrategy listing the live-capable planners.
func New(name string, cfg Config) (Incremental, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (live-capable: %v)", ErrUnknownStrategy, name, Planners())
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return f(cfg)
}

// Planners returns the sorted registry names of every planner family with
// a live adapter — the serving layer's capability list.
func Planners() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
