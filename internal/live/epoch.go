package live

import (
	"context"
	"fmt"
	"math"

	"repro/internal/arrivals"
	"repro/internal/batching"
	"repro/internal/dyadic"
	"repro/internal/hybrid"
	"repro/internal/mergetree"
	"repro/internal/moderr"
	"repro/internal/multiobject"
	"repro/internal/offline"
)

// Stream is one planned transmission in epoch-relative time.
type Stream struct {
	// Start is the transmission start, relative to the epoch base.
	Start float64
	// Length is the transmission duration in catalog time units.
	Length float64
}

// PlanParams are the batch-planner parameters of one epoch replan,
// mirroring exactly how the policy layer configures the same planner for
// the same instance — the reason a whole-horizon epoch reproduces the
// public Plan() bit for bit.
type PlanParams struct {
	// MediaLength and Delay are the object's length and effective delay.
	MediaLength, Delay float64
	// SlotsPerMedia is the L of the paper for (MediaLength, Delay).
	SlotsPerMedia int64
	// ConstantRate selects the constant-rate dyadic tuning (default:
	// Poisson golden ratio, like the facade's WithPoisson default).
	ConstantRate bool
	// Workers sizes the off-line DP pool (<= 0: serial).
	Workers int
	// Cache supplies the on-line template state the hybrid's
	// delay-guaranteed segments replay.
	Cache *Cache
	// Ctx bounds the off-line DP of a replan; it is never nil after
	// paramsFor (Config.withDefaults roots the default).
	Ctx context.Context
}

// paramsFor derives the replan parameters from a scheduler configuration.
func paramsFor(cfg Config) PlanParams {
	return PlanParams{
		MediaLength:   cfg.Object.Length,
		Delay:         cfg.Object.Delay,
		SlotsPerMedia: cfg.Object.Slots(),
		ConstantRate:  cfg.ConstantRate,
		Workers:       cfg.PlanWorkers,
		Cache:         cfg.Cache,
		Ctx:           cfg.Ctx,
	}
}

func (p PlanParams) dyadicParams() dyadic.Params {
	if p.ConstantRate {
		return dyadic.GoldenConstantRate(p.SlotsPerMedia)
	}
	return dyadic.GoldenPoisson()
}

// PlanOutcome is one batch replan's result: the authoritative cost the
// planner reports (never re-derived from the streams, so float summation
// order cannot drift from the batch path) plus the individual
// transmissions for gauge and bandwidth accounting.
type PlanOutcome struct {
	// Cost is the planner's bandwidth in complete media streams.
	Cost float64
	// Busy is the same bandwidth in catalog time units.
	Busy float64
	// Streams are the planned transmissions, epoch-relative.
	Streams []Stream
}

// Replanner runs one batch planner family over the (epoch-relative,
// nondecreasing) arrival times with the given horizon.
type Replanner func(times []float64, horizon float64, p PlanParams) (PlanOutcome, error)

// epochStrategy describes how one batch planner family serves live
// traffic through the epoch adapter.
type epochStrategy struct {
	name string
	// batched: arrivals wait until the end of their slot (StartAt is the
	// slot end, clients are distinct occupied slots).  Immediate-service
	// strategies start playback at the arrival itself and count distinct
	// arrival times.
	batched bool
	// perArrival: every arrival is its own client even at equal times
	// (unicast's no-sharing accounting).
	perArrival bool
	replan     Replanner
	// newWarm builds the strategy's warm-start replanning state (nil:
	// the strategy always replans cold — unicast and hybrid, see warm.go).
	newWarm func(p PlanParams) warmState
}

// epochStrategies lists the live-capable batch planner families.  Names
// are the public planner registry names; each replanner calls exactly the
// code path the policy layer uses for the same name.
var epochStrategies = []epochStrategy{
	{name: "offline", replan: replanOffline, newWarm: newTablesWarm(false)},
	{name: "offline-batched", batched: true, replan: replanOfflineBatched, newWarm: newTablesWarm(true)},
	{name: "dyadic", replan: replanDyadic, newWarm: newStartsWarm(false, true)},
	{name: "dyadic-batched", batched: true, replan: replanDyadicBatched, newWarm: newStartsWarm(true, true)},
	{name: "batching", batched: true, replan: replanBatching, newWarm: newStartsWarm(true, false)},
	{name: "unicast", perArrival: true, replan: replanUnicast},
	{name: "hybrid", batched: true, replan: replanHybrid},
}

func init() {
	for _, st := range epochStrategies {
		st := st
		Register(st.name, func(cfg Config) (Incremental, error) {
			return newEpochSched(st, cfg), nil
		})
	}
}

// epochSched makes a batch planner incremental by epoch-based replanning:
// arrivals are collected for an epoch of EpochSlots slots; when the clock
// passes the epoch boundary the batch planner is re-run over the epoch's
// arrivals and its plan is spliced in at the boundary (streams open
// through the Sink, retroactively for the parts already in the past).
// Merging never crosses an epoch boundary — the same isolation the hybrid
// applies to its mode segments — so each epoch's cost is exactly the
// batch planner's cost on that epoch, and a drain with EpochSlots at
// least the horizon reproduces the whole batch plan bit for bit.
//
//modlint:loop
type epochSched struct {
	st    epochStrategy
	sink  Sink
	p     PlanParams
	delay float64

	// origin is the absolute time of the first epoch's start; epoch k
	// spans [origin + k*epochLen, origin + (k+1)*epochLen).  epochLen <= 0
	// collects a single epoch closed only by Drain.
	origin   float64
	epochLen float64
	epoch    int64

	// times are the current epoch's arrivals, epoch-relative and
	// nondecreasing.
	times []float64
	// lastSlot is the largest occupied (epoch-relative) arrival slot of a
	// batched strategy (-1: none); lastTime is the latest distinct arrival
	// time of an immediate one.
	lastSlot int64
	lastTime float64
	// epochSlots mirrors Config.EpochSlots; batched Admission slots are
	// slotBase + epoch*epochSlots + relative slot, so (delay-epoch, Slot)
	// stays unambiguous across replanning epochs.  slotBase accumulates
	// the slots consumed before each re-basing (pressure closes, drains).
	epochSlots int64
	slotBase   int64
	// warm is the strategy's warm-start replanning state, absorbing
	// arrivals as they are admitted so the epoch close pays only for the
	// un-absorbed tail (nil: cold replanning, by configuration or because
	// the strategy has no warm form).  now meters replan latency when the
	// serving layer injects a clock (nil on deterministic paths).
	warm warmState
	now  func() int64
	// provisional holds the estimated ends of the admission gauge's
	// placeholder channels for the current epoch's clients: until the
	// plan exists, each distinct service instant conservatively occupies
	// one channel for a full media length (the unicast upper bound), so a
	// channel cap still throttles epoch strategies mid-epoch.  The close
	// replaces them with the real plan's streams.
	provisional []float64

	totals Totals
}

func newEpochSched(st epochStrategy, cfg Config) *epochSched {
	s := &epochSched{
		st:       st,
		sink:     cfg.Sink,
		p:        paramsFor(cfg),
		delay:    cfg.Object.Delay,
		origin:   cfg.Base,
		lastSlot: -1,
		lastTime: math.Inf(-1),
	}
	if cfg.EpochSlots > 0 {
		s.epochLen = float64(cfg.EpochSlots) * cfg.Object.Delay
		s.epochSlots = int64(cfg.EpochSlots)
	}
	if !cfg.ColdReplan && st.newWarm != nil {
		s.warm = st.newWarm(s.p)
	}
	s.now = cfg.NowNanos
	return s
}

func (s *epochSched) Strategy() string { return s.st.name }

// base returns the absolute start of the current epoch, computed from the
// origin so repeated boundary crossings cannot accumulate float drift.
func (s *epochSched) base() float64 {
	return s.origin + float64(s.epoch)*s.epochLen
}

// rollTo closes every epoch whose boundary t has passed.
func (s *epochSched) rollTo(t float64) {
	if s.epochLen <= 0 {
		return
	}
	for t-s.base() >= s.epochLen {
		s.closeEpoch(s.epochLen)
		s.epoch++
		s.lastSlot = -1
		s.lastTime = math.Inf(-1)
	}
}

func (s *epochSched) Advance(t float64) {
	s.rollTo(t)
}

func (s *epochSched) Admit(t float64) Admission {
	s.rollTo(t)
	rel := t - s.base()
	if rel < 0 {
		rel = 0
	}
	if n := len(s.times); n > 0 && rel < s.times[n-1] {
		// Defensive: the shard clock is monotone, so within one epoch rel
		// cannot regress; keep the recorded trace nondecreasing anyway.
		rel = s.times[n-1]
	}
	adm := Admission{Delay: s.delay}
	newClient := false
	if s.st.batched {
		slot := int64(math.Floor(rel / s.delay))
		if slot > s.lastSlot {
			s.lastSlot = slot
			s.totals.Clients++
			newClient = true
		}
		adm.Slot = s.slotBase + s.epoch*s.epochSlots + s.lastSlot
		adm.StartAt = s.base() + float64(s.lastSlot+1)*s.delay
		// Record the raw time, not the slot end: the batch planners apply
		// their own batching to raw arrival times.
	} else {
		if s.st.perArrival || rel != s.lastTime {
			s.totals.Clients++
			newClient = true
		}
		s.lastTime = rel
		adm.Slot = s.totals.Clients - 1
		adm.StartAt = s.base() + rel
	}
	if newClient {
		// Until the epoch closes and the real plan exists, the admission
		// gauge counts this client's service as one merging-free channel —
		// the unicast upper bound — so a channel cap throttles epoch
		// strategies mid-epoch instead of discovering the load at close.
		est := adm.StartAt + s.p.MediaLength
		s.sink.ProvisionalStarted(est)
		s.provisional = append(s.provisional, est)
	}
	s.times = append(s.times, rel)
	if s.warm != nil {
		s.warm.observe(rel)
	}
	if len(s.times) >= maxEpochArrivals {
		// Pressure close: a flood of same-timestamp requests never
		// advances the clock, so without this bound the epoch (and its
		// replan instance) would grow without limit.  Close at the end of
		// the last occupied slot and continue in a fresh epoch.
		s.closeAt((math.Floor(rel/s.delay) + 1) * s.delay)
	}
	return adm
}

// closeEpoch runs the batch planner over the current epoch's arrivals
// with the given epoch-relative horizon and splices the plan in: every
// stream is opened and finalized through the Sink at its absolute time,
// and the epoch's provisional gauge placeholders are retired in the same
// breath (the real streams take over the channel accounting).
func (s *epochSched) closeEpoch(relHorizon float64) {
	if len(s.times) == 0 {
		return
	}
	closeAbs := s.base() + relHorizon
	for _, est := range s.provisional {
		if est > closeAbs {
			// Still counted by the gauge: retire the placeholder at the
			// close and cancel its pending end event.  Placeholders whose
			// estimates already passed retired themselves.
			s.sink.StreamTrimmed(closeAbs, est)
		}
	}
	s.provisional = s.provisional[:0]
	var t0 int64
	if s.now != nil {
		t0 = s.now()
	}
	out, err := s.runReplan(relHorizon)
	if s.now != nil {
		d := s.now() - t0
		s.totals.Replan.ReplanNanos += d
		if d > s.totals.Replan.MaxReplanNanos {
			s.totals.Replan.MaxReplanNanos = d
		}
	}
	if err != nil {
		// Never fail the serving path: fall back to one full unicast
		// stream per arrival (an overcount, never an undercount) and
		// surface the failure in the totals.
		out = replanFallback(s.times, s.p)
		s.totals.ReplanFailures++
	}
	base := s.base()
	for _, iv := range out.Streams {
		s.sink.StreamStarted(base + iv.Start + iv.Length)
		s.sink.StreamFinalized(base+iv.Start, iv.Length)
	}
	s.totals.Streams += int64(len(out.Streams))
	s.totals.FinalizedStreams += int64(len(out.Streams))
	s.totals.BusyTime += out.Busy
	s.totals.Cost += out.Cost
	s.times = s.times[:0]
}

// runReplan answers one epoch close: from the warm state when it can
// reproduce the cold planner bit for bit, from the cold batch planner
// otherwise.  Warm state never outlives its epoch — consecutive epochs
// have disjoint epoch-relative traces — so it is reset at every close,
// which also drops the retained table handle at drains.
func (s *epochSched) runReplan(relHorizon float64) (PlanOutcome, error) {
	s.totals.Replan.Replans++
	if s.warm != nil {
		defer s.warm.reset()
		out, rep, handled, err := s.warm.replan(s.times, relHorizon)
		if handled {
			s.totals.Replan.WarmReplans++
			s.totals.Replan.CellsReused += rep.cellsReused
			s.totals.Replan.CellsRecomputed += rep.cellsRecomputed
			return out, err
		}
	}
	return s.st.replan(s.times, relHorizon, s.p)
}

// maxEpochArrivals bounds how many arrivals one epoch may collect before
// it is pressure-closed (a variable so tests can lower it).
var maxEpochArrivals = 1 << 17

// closeAt closes the current epoch at the epoch-relative time relEnd and
// re-bases the scheduler there, returning the absolute end.
func (s *epochSched) closeAt(relEnd float64) float64 {
	s.closeEpoch(relEnd)
	end := s.base() + relEnd
	s.slotBase += s.epoch*s.epochSlots + int64(math.Ceil(relEnd/s.delay))
	s.origin = end
	s.epoch = 0
	s.lastSlot = -1
	s.lastTime = math.Inf(-1)
	return end
}

// Drain closes any full epochs before the horizon, then the final partial
// epoch, widening its horizon to the end of the last occupied slot so no
// admitted arrival is ever dropped (the batch planners clip at their
// horizon).  It returns the absolute end of the final epoch.
func (s *epochSched) Drain(horizon float64) float64 {
	s.rollTo(horizon)
	rel := horizon - s.base()
	if rel < 0 {
		rel = 0
	}
	if n := len(s.times); n > 0 {
		if end := (math.Floor(s.times[n-1]/s.delay) + 1) * s.delay; end > rel {
			rel = end
		}
	}
	return s.closeAt(rel)
}

func (s *epochSched) Totals() Totals { return s.totals }

// replanFallback is the never-fail plan: a private full stream per
// arrival (exactly the unicast strawman).
func replanFallback(times []float64, p PlanParams) PlanOutcome {
	out := PlanOutcome{Cost: float64(len(times)), Busy: float64(len(times)) * p.MediaLength}
	out.Streams = make([]Stream, len(times))
	for i, t := range times {
		out.Streams[i] = Stream{Start: t, Length: p.MediaLength}
	}
	return out
}

// appendForestStreams extracts the transmissions of a real-valued merge
// forest: roots own full streams of length L, and a non-root node x
// merging into parent p transmits for 2 z(x) − x − p (Lemma 1 for general
// arrivals) — the receive-two lengths the forest costs are built from.
func appendForestStreams(dst []Stream, f *mergetree.RForest) []Stream {
	for _, tr := range f.Trees {
		tr.Walk(func(node, parent *mergetree.RTree) {
			if parent == nil {
				dst = append(dst, Stream{Start: node.Arrival, Length: f.L})
			} else {
				dst = append(dst, Stream{Start: node.Arrival, Length: 2*node.Last() - node.Arrival - parent.Arrival})
			}
		})
	}
	return dst
}

func clip(times []float64, horizon float64) arrivals.Trace {
	return arrivals.Trace(times).Clip(horizon)
}

// replanOffline is the exact off-line optimum (the banded interval DP),
// the same call policy.OfflineOptimal makes.
func replanOffline(times []float64, horizon float64, p PlanParams) (PlanOutcome, error) {
	return offlineOutcome(clip(times, horizon), p)
}

// replanOfflineBatched batches arrivals to their slot ends first — the
// tight lower bound for the delay-`delay` policies.
func replanOfflineBatched(times []float64, horizon float64, p PlanParams) (PlanOutcome, error) {
	return offlineOutcome(clip(times, horizon).BatchTimes(p.Delay), p)
}

// Live epochs must never run a DP the batch facade would refuse: these
// mirror the policy layer's off-line instance caps (50000 arrivals,
// ~1.5 GiB of banded tables).  An over-cap epoch falls back to unicast
// streams (counted in ReplanFailures) instead of stalling the shard
// event loop on a multi-GB allocation.
const (
	maxOfflineEpochArrivals   = 50000
	maxOfflineEpochTableBytes = int64(1) << 30 * 3 / 2
)

func offlineOutcome(times []float64, p PlanParams) (PlanOutcome, error) {
	if len(times) == 0 {
		return PlanOutcome{}, nil
	}
	if len(times) > maxOfflineEpochArrivals {
		return PlanOutcome{}, fmt.Errorf("%w: live: epoch of %d arrivals exceeds the %d-arrival off-line DP cap",
			moderr.ErrInstanceTooLarge, len(times), maxOfflineEpochArrivals)
	}
	if bytes := offline.BandBytes(times, p.MediaLength); bytes > maxOfflineEpochTableBytes {
		return PlanOutcome{}, fmt.Errorf("%w: live: epoch DP would need %d MB of tables (cap %d MB)",
			moderr.ErrInstanceTooLarge, bytes>>20, maxOfflineEpochTableBytes>>20)
	}
	// The DP requires strictly increasing times; clients at identical
	// instants share a stream trivially, so collapse ties (the dyadic
	// algorithm does the same).  Untied traces pass through unchanged,
	// keeping the cost bit-identical to policy.OfflineOptimal's.
	deduped := times
	for i := 1; i < len(times); i++ {
		if times[i] == times[i-1] {
			deduped = make([]float64, 0, len(times))
			for j, t := range times {
				if j == 0 || t != times[j-1] {
					deduped = append(deduped, t)
				}
			}
			break
		}
	}
	ctx := p.Ctx
	if ctx == nil {
		//modlint:ignore ctxflow BatchReference builds PlanParams directly without withDefaults; root the never-cancelled default here
		ctx = context.Background()
	}
	res, err := offline.OptimalForestWorkers(ctx, deduped, p.MediaLength, offline.ReceiveTwo, p.Workers)
	if err != nil {
		return PlanOutcome{}, err
	}
	return PlanOutcome{
		Cost:    res.NormalizedCost(),
		Busy:    res.Cost,
		Streams: appendForestStreams(nil, res.Forest),
	}, nil
}

// replanDyadic is the immediate-service dyadic baseline.
func replanDyadic(times []float64, horizon float64, p PlanParams) (PlanOutcome, error) {
	f, err := dyadic.BuildForest(clip(times, horizon), p.MediaLength, p.dyadicParams())
	if err != nil {
		return PlanOutcome{}, err
	}
	return forestOutcome(f), nil
}

// replanDyadicBatched is the batched dyadic baseline.
func replanDyadicBatched(times []float64, horizon float64, p PlanParams) (PlanOutcome, error) {
	f, err := dyadic.BuildBatchedForest(clip(times, horizon), p.MediaLength, p.Delay, p.dyadicParams())
	if err != nil {
		return PlanOutcome{}, err
	}
	return forestOutcome(f), nil
}

func forestOutcome(f *mergetree.RForest) PlanOutcome {
	return PlanOutcome{
		Cost:    f.NormalizedCost(),
		Busy:    f.FullCost(),
		Streams: appendForestStreams(nil, f),
	}
}

// replanBatching is merging-free batching: one full stream per occupied
// slot, started at the slot's end.
func replanBatching(times []float64, horizon float64, p PlanParams) (PlanOutcome, error) {
	starts := clip(times, horizon).BatchTimes(p.Delay)
	out := PlanOutcome{
		Cost: batching.BatchedCost(clip(times, horizon), p.Delay),
		Busy: float64(len(starts)) * p.MediaLength,
	}
	out.Streams = make([]Stream, len(starts))
	for i, t := range starts {
		out.Streams[i] = Stream{Start: t, Length: p.MediaLength}
	}
	return out, nil
}

// replanUnicast is the no-sharing strawman: a private full stream per
// client the moment it arrives.
func replanUnicast(times []float64, horizon float64, p PlanParams) (PlanOutcome, error) {
	clipped := clip(times, horizon)
	out := replanFallback(clipped, p)
	out.Cost = batching.ImmediateUnicastCost(clipped)
	return out, nil
}

// replanHybrid replays the Section 5 mode-switching timeline: the hybrid
// engine classifies the epoch into loaded/unloaded segments, and each
// segment's streams come from its mode — the oblivious on-line group
// lengths for delay-guaranteed segments, the batched dyadic forest for
// dyadic ones.  The cost is the engine's TotalCost, so the live number is
// the batch hybrid's number.
func replanHybrid(times []float64, horizon float64, p PlanParams) (PlanOutcome, error) {
	cfg := hybrid.DefaultConfig(p.MediaLength, p.Delay)
	clipped := clip(times, horizon)
	res, err := hybrid.Run(clipped, horizon, cfg)
	if err != nil {
		return PlanOutcome{}, err
	}
	out := PlanOutcome{Cost: res.TotalCost, Busy: res.TotalCost * p.MediaLength}
	plan := p.Cache.planFor(p.SlotsPerMedia)
	var lens []mergetree.NodeLength
	for _, seg := range res.Segments {
		switch seg.Mode {
		case hybrid.ModeDelayGuaranteed:
			n := int64(math.Round((seg.End - seg.Start) / p.Delay))
			if n < 1 {
				continue
			}
			lens = plan.onl.AppendLengths(lens[:0], n)
			for _, nl := range lens {
				out.Streams = append(out.Streams, Stream{
					Start:  seg.Start + float64(nl.Arrival)*p.Delay,
					Length: float64(nl.Length) * p.Delay,
				})
			}
		case hybrid.ModeDyadic:
			if seg.Arrivals == 0 {
				continue
			}
			var segTimes []float64
			for _, t := range clipped {
				if t >= seg.Start && t < seg.End {
					segTimes = append(segTimes, t)
				}
			}
			f, err := dyadic.BuildBatchedForest(arrivals.Trace(segTimes), p.MediaLength, p.Delay, cfg.Dyadic)
			if err != nil {
				return PlanOutcome{}, err
			}
			out.Streams = appendForestStreams(out.Streams, f)
		}
	}
	return out, nil
}

// BatchReference returns the stream count and cost the named strategy's
// batch plan produces for the (relative, nondecreasing) arrival times
// over the horizon — the numbers a drained live run with EpochSlots >=
// horizon must reproduce bit for bit.  For the oblivious on-line strategy
// the horizon is rounded to slots exactly like policy.DelayGuaranteed.
func BatchReference(strategy string, times []float64, horizon float64, obj multiobject.Object, constantRate bool, workers int) (streams int64, cost float64, err error) {
	p := PlanParams{
		MediaLength:   obj.Length,
		Delay:         obj.Delay,
		SlotsPerMedia: obj.Slots(),
		ConstantRate:  constantRate,
		Workers:       workers,
		Cache:         NewCache(),
	}
	if strategy == "online" {
		n := int64(math.Round(horizon / obj.Delay))
		if n < 1 {
			n = 1
		}
		plan := p.Cache.planFor(p.SlotsPerMedia)
		return n, float64(plan.onl.CostClosed(n)) / float64(p.SlotsPerMedia), nil
	}
	for _, st := range epochStrategies {
		if st.name != strategy {
			continue
		}
		if len(times) == 0 {
			return 0, 0, nil
		}
		out, err := st.replan(times, horizon, p)
		if err != nil {
			return 0, 0, err
		}
		return int64(len(out.Streams)), out.Cost, nil
	}
	return 0, 0, fmt.Errorf("%w %q", ErrUnknownStrategy, strategy)
}
