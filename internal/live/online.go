package live

import (
	"math"

	"repro/internal/mergetree"
	"repro/internal/online"
)

// onlinePlan is the cached static state of the on-line algorithm for one
// media length: the precomputed server, the untruncated template-group
// stream lengths, and the template group's total bandwidth in slot units.
type onlinePlan struct {
	onl *online.Server
	// tmplLens are the lengths of a full (untruncated) merge group, indexed
	// by group-relative arrival.
	tmplLens []mergetree.NodeLength
	// tmplUnits is the sum of tmplLens lengths.
	tmplUnits int64
}

// Cache shares onlinePlan state by media length L, so a thousand-object
// Zipf catalog with a shared delay builds the merge template once per
// shard, not once per object.  It is not safe for concurrent use; each
// serving shard owns one.
type Cache struct {
	plans map[int64]*onlinePlan
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{plans: map[int64]*onlinePlan{}}
}

// planFor returns the cached static plan for media length L (in slots).
func (c *Cache) planFor(L int64) *onlinePlan {
	if p, ok := c.plans[L]; ok {
		return p
	}
	onl := online.NewServer(L)
	lens := onl.AppendGroupLengths(nil, onl.TreeSize())
	var units int64
	for _, nl := range lens {
		units += nl.Length
	}
	p := &onlinePlan{onl: onl, tmplLens: lens, tmplUnits: units}
	c.plans[L] = p
	return p
}

func init() {
	Register("online", func(cfg Config) (Incremental, error) {
		return newOnlineSched(cfg), nil
	})
}

// onlineSched is the native incremental scheduler of the paper's on-line
// delay-guaranteed algorithm: the oblivious plan starts a (possibly
// truncated) stream at every slot following the static F_h merge-tree
// template, whether or not a request arrived.  Merge groups are finalized
// the moment they complete; the trailing partial group is truncated at
// drain exactly like the batch horizon, so a drained run reproduces the
// batch forest's stream counts and bandwidth bit for bit.
//
//modlint:loop
type onlineSched struct {
	sink  Sink
	delay float64
	L     int64
	plan  *onlinePlan
	// base is the absolute time of slot 0.
	base float64
	// started is the number of streams started (stream q starts at
	// base + q*delay); finalized is the number of slots whose stream
	// lengths are final (a multiple of the group size during live
	// operation).
	started   int64
	finalized int64
	// lastArrival is the largest occupied arrival slot (-1: none); each
	// newly occupied slot is one batched imaginary client.
	lastArrival int64

	clients          int64
	streams          int64
	finalizedStreams int64
	slotUnits        int64
	busyTime         float64

	// scratch buffers: partial-group finalization and receiving programs.
	buf     []mergetree.NodeLength
	progBuf []int64
}

func newOnlineSched(cfg Config) *onlineSched {
	return &onlineSched{
		sink:        cfg.Sink,
		delay:       cfg.Object.Delay,
		L:           cfg.Object.Slots(),
		plan:        cfg.Cache.planFor(cfg.Object.Slots()),
		base:        cfg.Base,
		lastArrival: -1,
	}
}

func (s *onlineSched) Strategy() string { return "online" }

func (s *onlineSched) Admit(t float64) Admission {
	slot := int64(math.Floor((t - s.base) / s.delay))
	if slot < 0 {
		slot = 0
	}
	if slot < s.lastArrival {
		// Out-of-order timestamp within the epoch: batch into the latest
		// occupied slot, like a request arriving now.
		slot = s.lastArrival
	}
	s.startStreamsTo(slot)
	if slot > s.lastArrival {
		s.lastArrival = slot
		s.clients++
	}
	s.progBuf = s.plan.onl.AppendProgramFor(s.progBuf[:0], slot)
	return Admission{
		Slot:    slot,
		Delay:   s.delay,
		StartAt: s.base + float64(slot+1)*s.delay,
		Program: s.progBuf,
	}
}

func (s *onlineSched) Advance(t float64) {
	s.startStreamsTo(int64(math.Floor((t - s.base) / s.delay)))
}

// startStreamsTo starts every stream of the oblivious plan up to and
// including slot, finalizing each merge group the moment it completes.
func (s *onlineSched) startStreamsTo(slot int64) {
	size := s.plan.onl.TreeSize()
	for s.started <= slot {
		q := s.started % size
		ln := s.plan.tmplLens[q].Length
		start := s.base + float64(s.started)*s.delay
		s.sink.StreamStarted(start + float64(ln)*s.delay)
		s.streams++
		s.started++
		if s.started%size == 0 {
			s.finalizeFullGroup()
		}
	}
}

// finalizeFullGroup finalizes the group [finalized, finalized+size): once
// the next group's first stream exists the horizon is at least the group
// end, so its lengths are the untruncated template lengths.
func (s *onlineSched) finalizeFullGroup() {
	base := s.finalized
	for _, nl := range s.plan.tmplLens {
		start := s.base + float64(base+nl.Arrival)*s.delay
		s.sink.StreamFinalized(start, float64(nl.Length)*s.delay)
	}
	s.finalized = base + int64(len(s.plan.tmplLens))
	s.finalizedStreams += int64(len(s.plan.tmplLens))
	s.slotUnits += s.plan.tmplUnits
	s.busyTime += float64(s.plan.tmplUnits) * s.delay
}

// Drain closes the schedule at a horizon of n = ceil((horizon-base)/delay)
// slots (starting any not-yet-started streams), truncating the trailing
// partial group exactly like the batch plan's final group.  The horizon
// widens to cover occupied slots and already-started streams, mirroring
// sim.RunWorkload, and the absolute end of the final slot is returned.
func (s *onlineSched) Drain(horizon float64) float64 {
	n := int64(math.Ceil((horizon - s.base) / s.delay))
	if n < 1 {
		n = 1
	}
	if last := s.lastArrival; last+1 > n {
		n = last + 1
	}
	if s.started > n {
		n = s.started
	}
	s.startStreamsTo(n - 1)
	if s.finalized == n {
		return s.base + float64(n)*s.delay
	}
	m := n - s.finalized
	s.buf = s.plan.onl.AppendGroupLengths(s.buf[:0], m)
	base := s.finalized
	for _, nl := range s.buf {
		start := s.base + float64(base+nl.Arrival)*s.delay
		s.sink.StreamFinalized(start, float64(nl.Length)*s.delay)
		s.slotUnits += nl.Length
		s.busyTime += float64(nl.Length) * s.delay
		// The stream was started with the untruncated template length; if
		// truncation cut it short, correct the gauge: retire the stream at
		// its true end and cancel the stale event at the estimate, so a
		// degradation's freed channels are visible to admission
		// immediately rather than when the estimates expire.
		if prov := s.plan.tmplLens[nl.Arrival].Length; nl.Length < prov {
			s.sink.StreamTrimmed(start+float64(nl.Length)*s.delay, start+float64(prov)*s.delay)
		}
	}
	s.finalized = n
	s.finalizedStreams += m
	return s.base + float64(n)*s.delay
}

func (s *onlineSched) Totals() Totals {
	return Totals{
		Clients:          s.clients,
		Streams:          s.streams,
		FinalizedStreams: s.finalizedStreams,
		SlotUnits:        s.slotUnits,
		BusyTime:         s.busyTime,
		// The on-line cost in media streams is exact slot units over L —
		// the same division online.NormalizedCost performs, so a drained
		// whole-horizon run is bit-identical to the batch planner.
		Cost: float64(s.slotUnits) / float64(s.L),
	}
}
