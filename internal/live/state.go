package live

import "fmt"

// State is the serializable mid-run state of an Incremental scheduler:
// everything a restart cannot rederive from the object's configuration.
// The serving layer's durability path exports it at snapshot time, writes
// it through the snapshot codec, and hands it back to Restore on
// recovery; Export and Restore are exact inverses, so a restored
// scheduler continues bit-identically to the uninterrupted one (the
// crash-recovery equivalence tests pin this for every strategy).
//
// Exactly one of Online and Epoch is set, matching the strategy family.
type State struct {
	// Strategy is the scheduler's planner registry name.
	Strategy string
	Online   *OnlineState
	Epoch    *EpochState
}

// OnlineState is the dynamic state of the native on-line scheduler.  The
// merge-tree template, group lengths, and scratch buffers are static
// per media length and come back from the plan cache.
type OnlineState struct {
	// Base is the absolute time of slot 0 (it moves on degradation).
	Base float64
	// Started and Finalized are the stream and slot cursors of the
	// oblivious plan; LastArrival is the largest occupied arrival slot
	// (-1: none).
	Started     int64
	Finalized   int64
	LastArrival int64
	// The accounting mirror of Totals().
	Clients          int64
	Streams          int64
	FinalizedStreams int64
	SlotUnits        int64
	BusyTime         float64
}

// EpochState is the dynamic state of an epoch-replanning scheduler.  The
// warm replanning state is not exported: it is a pure function of the
// current epoch's arrival trace, so Restore rebuilds it by re-observing
// Times in order.
type EpochState struct {
	// Origin is the absolute time of the first epoch's start.
	Origin float64
	// Epoch is the current epoch index.
	Epoch int64
	// Times are the current epoch's arrivals, epoch-relative and
	// nondecreasing.
	Times []float64
	// LastSlot and LastTime are the batched / immediate duplicate-client
	// cursors (-1 and -Inf when the epoch is empty).
	LastSlot int64
	LastTime float64
	// SlotBase accumulates the slots consumed before re-basings.
	SlotBase int64
	// Provisional are the estimated ends of the gauge's placeholder
	// channels for the current epoch's clients.
	Provisional []float64
	// Totals is the closed-epoch accounting.
	Totals Totals
}

// Export captures sched's dynamic state.  It does not mutate the
// scheduler and may be called between any two admissions.
func Export(sched Incremental) (State, error) {
	switch s := sched.(type) {
	case *onlineSched:
		return State{Strategy: s.Strategy(), Online: &OnlineState{
			Base:             s.base,
			Started:          s.started,
			Finalized:        s.finalized,
			LastArrival:      s.lastArrival,
			Clients:          s.clients,
			Streams:          s.streams,
			FinalizedStreams: s.finalizedStreams,
			SlotUnits:        s.slotUnits,
			BusyTime:         s.busyTime,
		}}, nil
	case *epochSched:
		return State{Strategy: s.Strategy(), Epoch: &EpochState{
			Origin:      s.origin,
			Epoch:       s.epoch,
			Times:       append([]float64(nil), s.times...),
			LastSlot:    s.lastSlot,
			LastTime:    s.lastTime,
			SlotBase:    s.slotBase,
			Provisional: append([]float64(nil), s.provisional...),
			Totals:      s.totals,
		}}, nil
	}
	return State{}, fmt.Errorf("%w: cannot export scheduler type %T", ErrBadConfig, sched)
}

// Restore builds the named strategy's scheduler from cfg — exactly like
// New — and reinstates the dynamic state st on it.  No Sink events fire:
// the serving layer restores its gauge and bandwidth accounting from its
// own snapshot sections, so replaying stream history here would double
// count.  Warm replanning state is rebuilt by re-observing the restored
// arrival trace, which reproduces it exactly (it is a pure function of
// the nondecreasing trace).
func Restore(name string, cfg Config, st State) (Incremental, error) {
	sched, err := New(name, cfg)
	if err != nil {
		return nil, err
	}
	if st.Strategy != "" && st.Strategy != sched.Strategy() {
		return nil, fmt.Errorf("%w: restoring %q state into %q scheduler", ErrBadConfig, st.Strategy, sched.Strategy())
	}
	switch s := sched.(type) {
	case *onlineSched:
		o := st.Online
		if o == nil {
			return nil, fmt.Errorf("%w: no online state for strategy %q", ErrBadConfig, name)
		}
		s.base = o.Base
		s.started = o.Started
		s.finalized = o.Finalized
		s.lastArrival = o.LastArrival
		s.clients = o.Clients
		s.streams = o.Streams
		s.finalizedStreams = o.FinalizedStreams
		s.slotUnits = o.SlotUnits
		s.busyTime = o.BusyTime
		return s, nil
	case *epochSched:
		e := st.Epoch
		if e == nil {
			return nil, fmt.Errorf("%w: no epoch state for strategy %q", ErrBadConfig, name)
		}
		s.origin = e.Origin
		s.epoch = e.Epoch
		s.times = append(s.times[:0], e.Times...)
		s.lastSlot = e.LastSlot
		s.lastTime = e.LastTime
		s.slotBase = e.SlotBase
		s.provisional = append(s.provisional[:0], e.Provisional...)
		s.totals = e.Totals
		if s.warm != nil {
			for _, rel := range s.times {
				s.warm.observe(rel)
			}
		}
		return s, nil
	}
	return nil, fmt.Errorf("%w: cannot restore scheduler type %T", ErrBadConfig, sched)
}
